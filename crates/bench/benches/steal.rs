//! Skewed-workload load balancing: the acceptance bench for the
//! work-stealing rayon shim.
//!
//! The workload is 64 items where item 0 costs 16× the rest — the shape a
//! chip DSE population takes when one heterogeneous genome decodes to a
//! much deeper evaluation than its cohort.  `chunked_scoped` reproduces
//! the pre-work-stealing executor (fixed contiguous chunks, one scoped
//! thread per core): the slow item's chunk-mates queue serially behind it,
//! so its thread straggles while the others idle.  The stealing variants
//! split tasks down to single items and rebalance, so the slow item
//! occupies one helper while the rest of the batch drains across the
//! others.
//!
//! On a multi-core machine the stealing medians beat the chunked median;
//! on a 1-core container every variant legitimately degrades to the
//! serial sum (recorded as such in `steal_baseline.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use rayon::prelude::*;
use std::hint::black_box;

/// Deterministic compute kernel: `units` slices of pure float work.
fn busy_work(units: u64) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..units * 4_000 {
        acc = acc * 0.999_999 + (i as f64).sqrt();
    }
    acc
}

/// One 16x item leading 63 unit items — the skew that makes fixed chunks
/// straggle.
fn skewed_units() -> Vec<u64> {
    let mut units = vec![1u64; 64];
    units[0] = 16;
    units
}

/// The pre-work-stealing executor of the vendored shim: split into fixed
/// contiguous chunks, one scoped thread per core, stitched in order.
/// Kept here as the comparison baseline the stealing pool must beat.
fn chunked_map<T: Sync, O: Send>(items: &[T], map: impl Fn(&T) -> O + Sync) -> Vec<O> {
    let threads = rayon::current_num_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(map).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let chunk_results: Vec<Vec<O>> = std::thread::scope(|scope| {
        let map = &map;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(map).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("chunk worker panicked"))
            .collect()
    });
    chunk_results.into_iter().flatten().collect()
}

/// Latency-bound kernel: sleeps `units` milliseconds.  Unlike the compute
/// kernel it overlaps across threads even on a 1-core machine, so the
/// chunked-vs-stealing gap is visible on any runner: with 4 threads and
/// 64 items, fixed chunks serialize the 16x item with 15 chunk-mates
/// (31 ms critical path) while stealing spreads those mates across the
/// other helpers (~21 ms).
fn busy_wait(units: u64) -> u64 {
    std::thread::sleep(std::time::Duration::from_millis(units));
    units
}

fn steal(c: &mut Criterion) {
    // Pin the width before the first rayon call: the comparison is about
    // scheduling, and a fixed width keeps it reproducible across runners.
    std::env::set_var(rayon::NUM_THREADS_ENV, "4");

    let mut group = c.benchmark_group("steal");
    group.sample_size(10);

    let units = skewed_units();

    group.bench_function("serial", |b| {
        b.iter(|| {
            let out: Vec<f64> = units.iter().map(|&u| busy_work(u)).collect();
            black_box(out)
        })
    });

    group.bench_function("chunked_scoped", |b| {
        b.iter(|| {
            let out = chunked_map(black_box(&units), |&u| busy_work(u));
            black_box(out)
        })
    });

    group.bench_function("stealing_borrowed", |b| {
        b.iter(|| {
            let out: Vec<f64> = black_box(&units)
                .par_iter()
                .with_max_len(1)
                .map(|&u| busy_work(u))
                .collect();
            black_box(out)
        })
    });

    group.bench_function("stealing_pool", |b| {
        b.iter(|| {
            let out: Vec<f64> = black_box(units.clone())
                .into_par_iter()
                .with_max_len(1)
                .map(busy_work)
                .collect();
            black_box(out)
        })
    });

    // The latency-bound pair: the direct chunked-vs-stealing comparison
    // the acceptance criterion names, visible on any core count.
    group.bench_function("chunked_sleepy", |b| {
        b.iter(|| {
            let out = chunked_map(black_box(&units), |&u| busy_wait(u));
            black_box(out)
        })
    });

    group.bench_function("stealing_pool_sleepy", |b| {
        b.iter(|| {
            let out: Vec<u64> = black_box(units.clone())
                .into_par_iter()
                .with_max_len(1)
                .map(busy_wait)
                .collect();
            black_box(out)
        })
    });

    group.finish();
}

criterion_group!(benches, steal);
criterion_main!(benches);
