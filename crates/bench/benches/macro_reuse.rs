//! Macro-metric reuse speedup on heterogeneous-grid chip DSE.
//!
//! A heterogeneous chip genome carries per-tile macro genes, so exact
//! genome duplicates — the only thing the genome-level evaluation cache
//! can absorb — are rare; yet the *macros* on those grids are drawn from
//! a small catalogue that recurs across thousands of genomes.  The
//! macro-metric reuse layer caches per-macro `DesignMetrics` below the
//! genome cache, so every new genome reuses the per-macro work earlier
//! chips derived.
//!
//! Two comparisons, both against one long-lived `MacroMetricsCache` (the
//! steady state of a service serving repeated heterogeneous requests):
//!
//! * `macro_reuse/{no_reuse,reuse}` — whole DSE runs.  The saving here is
//!   real but small: NSGA-II's genome-level cache and the per-layer
//!   costing dominate a full exploration, so the reuse layer trims the
//!   median by a few percent.
//! * `macro_reuse/{eval_no_reuse,eval_reuse}` — raw serial evaluator batches
//!   of mixed-macro chips, free of the optimiser's noise.  This isolates
//!   the per-chip work the reuse layer absorbs (~1.3× at one worker).
//!
//! The setup asserts reuse-on and reuse-off frontiers are bit-identical
//! before timing anything: the gap is pure redundant-derivation work,
//! never a different search.

use acim_arch::AcimSpec;
use acim_chip::{ChipEvaluator, ChipSpec, MacroGrid, MacroMetricsCache, Network};
use acim_dse::{ChipDseConfig, ChipExplorer, ExploreOptions};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn hetero_config() -> ChipDseConfig {
    // Fixed 2x2 heterogeneous grids over a shallow network: four per-tile
    // macro gene triples make exact genome repeats (the only thing the
    // genome-level cache absorbs) much rarer than in uniform mode, while
    // the macro catalogue stays small — the regime where a few distinct
    // specs recur across many genomes and per-macro derivation is a large
    // share of the per-chip cost.  (Bigger grids would fold even more,
    // but 16 independent tile genes make almost every genome infeasible.)
    let mut config = ChipDseConfig::for_network(Network::transformer_block());
    config.heterogeneous = true;
    config.grid_rows = vec![2];
    config.grid_cols = vec![2];
    config.population_size = 24;
    config.generations = 8;
    config
}

fn macro_reuse(c: &mut Criterion) {
    // Pin the width before the first rayon call so the comparison is
    // reproducible across runners.
    std::env::set_var(rayon::NUM_THREADS_ENV, "1");

    let explorer = ChipExplorer::new(hetero_config()).unwrap();

    // Correctness gate before the clocks start: reuse-on and reuse-off
    // frontiers must be bit-identical.
    let plain = explorer.explore().unwrap();
    let reuse_options = ExploreOptions {
        macro_cache: Some(MacroMetricsCache::new()),
        ..Default::default()
    };
    let reused = explorer.explore_with(&reuse_options, |_| {}).unwrap();
    assert_eq!(plain.len(), reused.len(), "reuse changed the frontier size");
    for (a, b) in plain.iter().zip(reused.iter()) {
        assert_eq!(
            a.objective_vector(),
            b.objective_vector(),
            "reuse changed a frontier point"
        );
        assert_eq!(a.chip, b.chip);
    }

    let mut group = c.benchmark_group("macro_reuse");
    group.sample_size(10);

    group.bench_function("no_reuse", |b| {
        b.iter(|| {
            let front = explorer.explore().unwrap();
            black_box(front.engine.evaluations)
        })
    });

    // One long-lived cache across iterations: after the first iteration
    // every distinct macro shape the search ever visits is cached, so the
    // steady state pays hash lookups instead of closed-form derivations.
    let cache = MacroMetricsCache::new();
    group.bench_function("reuse", |b| {
        b.iter(|| {
            let options = ExploreOptions {
                macro_cache: Some(cache.clone()),
                ..Default::default()
            };
            let front = explorer.explore_with(&options, |_| {}).unwrap();
            black_box(front.engine.macro_cache.hits)
        })
    });

    // The same comparison at the raw evaluator level, free of NSGA-II's
    // selection/variation noise: a batch of mixed-macro chips drawn from
    // a small catalogue, evaluated serially with and without a warm
    // macro-metric cache.  This isolates exactly the work the reuse
    // layer absorbs per chip.
    let network = Network::transformer_block();
    let catalogue: Vec<AcimSpec> = [
        (128usize, 32usize, 2usize, 2u32),
        (128, 32, 4, 3),
        (128, 32, 8, 4),
        (64, 64, 4, 3),
        (64, 64, 8, 2),
        (256, 16, 2, 3),
        (256, 16, 4, 2),
        (512, 8, 8, 2),
    ]
    .iter()
    .map(|&(h, w, l, b)| AcimSpec::from_dimensions(h, w, l, b).unwrap())
    .collect();
    let chips: Vec<ChipSpec> = (0..64)
        .map(|i| {
            let tiles: Vec<AcimSpec> = (0..4)
                .map(|t| catalogue[(i * 5 + t * 3) % catalogue.len()])
                .collect();
            ChipSpec::new(MacroGrid::from_specs(2, 2, tiles).unwrap(), 32).unwrap()
        })
        .collect();

    let plain_eval = ChipEvaluator::s28_default();
    group.bench_function("eval_no_reuse", |b| {
        b.iter(|| {
            for chip in &chips {
                black_box(plain_eval.evaluate_serial(chip, &network).unwrap());
            }
        })
    });
    let warm_eval = ChipEvaluator::s28_default().with_macro_cache(MacroMetricsCache::new());
    group.bench_function("eval_reuse", |b| {
        b.iter(|| {
            for chip in &chips {
                black_box(warm_eval.evaluate_serial(chip, &network).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, macro_reuse);
criterion_main!(benches);
