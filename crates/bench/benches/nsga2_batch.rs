//! Batch-evaluation engine throughput on the chip design problem: the
//! same seeded NSGA-II search driven through (a) the forced-serial
//! evaluation path (the pre-batch behaviour), (b) the rayon
//! population-parallel batch path, and (c) the batch path behind the
//! decode-keyed memoizing cache the explorers use in production.
//!
//! All three produce bit-identical Pareto fronts (the `batch_eval`
//! integration tests prove it); this bench records what the engine buys
//! in wall-clock.  The measured medians are recorded in
//! `nsga2_batch_baseline.json` next to this file.

use acim_chip::Network;
use acim_dse::{ChipDesignProblem, ChipDseConfig};
use acim_moga::{CachedProblem, Evaluation, Nsga2, Nsga2Config, Problem};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Forwards `evaluate` only, so the trait-default serial batch is used.
struct ForcedSerial<P>(P);

impl<P: Problem> Problem for ForcedSerial<P> {
    fn num_variables(&self) -> usize {
        self.0.num_variables()
    }
    fn num_objectives(&self) -> usize {
        self.0.num_objectives()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        self.0.evaluate(genes)
    }
}

fn chip_problem() -> ChipDesignProblem {
    // A deep network makes one chip evaluation substantial (per-layer
    // costing across up to 4x4 grids), which is the regime the parallel
    // batch path targets.
    ChipDesignProblem::new(&ChipDseConfig::for_network(Network::edge_cnn(16)))
        .expect("valid problem")
}

fn nsga2_config() -> Nsga2Config {
    Nsga2Config {
        population_size: 32,
        generations: 6,
        ..Default::default()
    }
}

fn nsga2_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2_batch");
    group.sample_size(10);

    let problem = chip_problem();
    let config = nsga2_config();

    group.bench_function("serial_eval", |b| {
        b.iter(|| {
            let result = Nsga2::new(ForcedSerial(&problem), config.clone())
                .with_seed(7)
                .run();
            black_box(result.evaluations())
        })
    });

    group.bench_function("batch_parallel_eval", |b| {
        b.iter(|| {
            let result = Nsga2::new(&problem, config.clone()).with_seed(7).run();
            black_box(result.evaluations())
        })
    });

    group.bench_function("batch_cached_eval", |b| {
        b.iter(|| {
            // A fresh cache per run, as the explorers use it.
            let keyer = problem.keyer();
            let cached = CachedProblem::with_key_fn(&problem, move |g| keyer.key(g));
            let result = Nsga2::new(&cached, config.clone()).with_seed(7).run();
            black_box((result.evaluations(), cached.stats().hits))
        })
    });

    // The raw batch primitive: one population-sized cohort of random
    // (decode-valid) genomes through each path.
    let genomes: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..problem.num_variables())
                .map(|j| ((i * 37 + j * 11) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    group.bench_function("raw_batch_64_serial", |b| {
        b.iter(|| {
            black_box(
                ForcedSerial(&problem)
                    .evaluate_batch(black_box(&genomes))
                    .len(),
            )
        })
    });
    group.bench_function("raw_batch_64_parallel", |b| {
        b.iter(|| black_box(problem.evaluate_batch(black_box(&genomes)).len()))
    });

    group.finish();
}

criterion_group!(benches, nsga2_batch);
criterion_main!(benches);
