//! Criterion bench of the performance-estimation model (Equations 2–11).
//!
//! The estimation model is evaluated tens of thousands of times per
//! exploration run, so its per-call cost is what makes the "agile" DSE
//! agile; this bench tracks it for both the simplified and the detailed SNR
//! path.

use acim_arch::AcimSpec;
use acim_model::{evaluate, snr_detailed_db, ModelParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn model_eval(c: &mut Criterion) {
    let params = ModelParams::s28_default();
    let spec = AcimSpec::from_dimensions(128, 128, 8, 3).expect("valid spec");

    c.bench_function("model_eval/four_objectives", |b| {
        b.iter(|| black_box(evaluate(black_box(&spec), &params).expect("evaluates")))
    });
    c.bench_function("model_eval/detailed_snr", |b| {
        b.iter(|| black_box(snr_detailed_db(black_box(&spec), &params).expect("evaluates")))
    });
}

criterion_group!(benches, model_eval);
criterion_main!(benches);
