//! Criterion bench of the performance-estimation model (Equations 2–11).
//!
//! The estimation model is evaluated tens of thousands of times per
//! exploration run, so its per-call cost is what makes the "agile" DSE
//! agile; this bench tracks it for the scalar facade, the hoisted
//! invariants path, the SoA batch kernel and the detailed SNR model.
//!
//! Every sample times a block of [`EVALS_PER_SAMPLE`] evaluations and
//! reports the mean per-evaluation duration, so the ~20 ns `Instant`
//! round-trip is amortised to noise instead of dominating a ~100 ns
//! workload.

use std::hint::black_box;
use std::time::Instant;

use acim_arch::AcimSpec;
use acim_model::{evaluate, snr_detailed_db, ModelInvariants, ModelParams, SpecBatch};
use criterion::{criterion_group, criterion_main, Criterion};

/// Evaluations timed per sample; reported medians are per-evaluation.
const EVALS_PER_SAMPLE: u32 = 256;

fn model_eval(c: &mut Criterion) {
    let params = ModelParams::s28_default();
    let spec = AcimSpec::from_dimensions(128, 128, 8, 3).expect("valid spec");

    c.bench_function("model_eval/four_objectives", |b| {
        b.iter_custom(|_| {
            let start = Instant::now();
            for _ in 0..EVALS_PER_SAMPLE {
                black_box(evaluate(black_box(&spec), &params).expect("evaluates"));
            }
            start.elapsed() / EVALS_PER_SAMPLE
        })
    });

    let invariants = ModelInvariants::new(&params).expect("valid params");
    c.bench_function("model_eval/invariants_eval", |b| {
        b.iter_custom(|_| {
            let start = Instant::now();
            for _ in 0..EVALS_PER_SAMPLE {
                black_box(invariants.evaluate_spec(black_box(&spec)));
            }
            start.elapsed() / EVALS_PER_SAMPLE
        })
    });

    let mut batch = SpecBatch::with_capacity(EVALS_PER_SAMPLE as usize);
    for _ in 0..EVALS_PER_SAMPLE {
        batch.push_spec(&spec);
    }
    let mut out = Vec::with_capacity(EVALS_PER_SAMPLE as usize);
    c.bench_function("model_eval/batch_soa", |b| {
        b.iter_custom(|_| {
            let start = Instant::now();
            invariants.evaluate_batch(black_box(&batch), &mut out);
            black_box(&out);
            start.elapsed() / EVALS_PER_SAMPLE
        })
    });

    c.bench_function("model_eval/detailed_snr", |b| {
        b.iter_custom(|_| {
            let start = Instant::now();
            for _ in 0..EVALS_PER_SAMPLE {
                black_box(snr_detailed_db(black_box(&spec), &params).expect("evaluates"));
            }
            start.elapsed() / EVALS_PER_SAMPLE
        })
    });
}

criterion_group!(benches, model_eval);
criterion_main!(benches);
