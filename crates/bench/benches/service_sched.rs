//! Request-latency distribution of the bounded admission scheduler under
//! oversubscription.
//!
//! The redesigned `ExplorationService` runs jobs on a **fixed worker
//! set** (one per pool thread) behind a bounded priority queue, instead
//! of spawning one OS thread per request.  Under a 10x-oversubscribed
//! burst the old thread-per-request herd runs every job concurrently on
//! the same rayon pool: every job thrashes against every other, so the
//! *median* request takes almost as long as the whole burst.  The
//! scheduler admits the same burst but runs `workers` jobs at a time:
//! tail latency (p99, the last job out) stays at the herd's level —
//! the machine does the same total work — while the median falls
//! towards half of it, because early-dequeued jobs finish on an
//! uncontended pool and leave.
//!
//! Both sides are the *same* service code path; only the admission
//! policy differs.  The herd is emulated faithfully by a service with
//! one worker per request (`workers = burst`), which admits every
//! submission straight onto its own dedicated thread — exactly the
//! pre-redesign dispatch.  Each side's burst is `10 x
//! rayon::current_num_threads()` identical quick chip requests over a
//! pre-warmed shared cache (the steady state a serving front-end
//! reaches), so per-request work is a deterministic cache replay and
//! the measured gap is pure scheduling.
//!
//! Per-sample, one full burst runs and the reported duration is the
//! requested percentile of the burst's per-request latencies
//! (submission -> completion, exact under the scheduler's FIFO
//! dequeue-and-join order).  The shim then reports the median of those
//! percentile samples, and the bench gate compares all four ids
//! (`sched_p50`, `sched_p99`, `herd_p50`, `herd_p99`) against the
//! checked-in baseline.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use easyacim::prelude::*;
use easyacim::service::{ExplorationRequest, ExplorationService, ServiceConfig};

fn quick_chip_config() -> ChipFlowConfig {
    let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
    config.dse.population_size = 16;
    config.dse.generations = 6;
    config.dse.grid_rows = vec![1, 2];
    config.dse.grid_cols = vec![1, 2];
    config.dse.buffer_kib = vec![8, 32];
    config.validate_best = false;
    config
}

/// Builds a warm service: `workers` scheduler workers, queue deep enough
/// for a whole burst, telemetry off (both sides identically), and the
/// shared chip cache populated by one cold request.
fn warm_service(workers: usize, burst: usize) -> ExplorationService {
    let service = ExplorationService::with_config(
        ServiceConfig::default()
            .without_telemetry()
            .with_workers(workers)
            .with_queue_capacity(burst),
    );
    service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap();
    service
}

/// Submits one oversubscribed burst and returns the per-request
/// latencies (submission instant -> join return, in submission order).
fn burst_latencies(service: &ExplorationService, burst: usize) -> Vec<Duration> {
    let start = Instant::now();
    let handles: Vec<_> = (0..burst)
        .map(|_| {
            service
                .submit(ExplorationRequest::chip_space(quick_chip_config()))
                .expect("queue sized for the whole burst")
        })
        .collect();
    handles
        .into_iter()
        .map(|handle| {
            handle.join().unwrap();
            start.elapsed()
        })
        .collect()
}

/// The `pct`-th percentile (nearest-rank on the sorted sample).
fn percentile(latencies: &mut [Duration], pct: f64) -> Duration {
    latencies.sort_unstable();
    let rank = ((pct / 100.0) * (latencies.len() - 1) as f64).round() as usize;
    latencies[rank]
}

fn service_sched(c: &mut Criterion) {
    // Pin the pool width before the first rayon call so the burst size
    // and the scheduler's worker set are reproducible across runners.
    std::env::set_var(rayon::NUM_THREADS_ENV, "1");
    let workers = rayon::current_num_threads();
    let burst = workers * 10;

    let sched = warm_service(workers, burst);
    let herd = warm_service(burst, burst);
    assert_eq!(sched.worker_count(), workers);
    assert_eq!(herd.worker_count(), burst);

    let mut group = c.benchmark_group("service_sched");
    group.sample_size(10);
    for (id, service, pct) in [
        ("sched_p50", &sched, 50.0),
        ("sched_p99", &sched, 99.0),
        ("herd_p50", &herd, 50.0),
        ("herd_p99", &herd, 99.0),
    ] {
        group.bench_function(id, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut latencies = burst_latencies(service, burst);
                    total += percentile(&mut latencies, pct);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, service_sched);
criterion_main!(benches);
