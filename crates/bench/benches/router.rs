//! Criterion bench of the grid-based maze router (Section 2.3 / 3.3),
//! including the ablation the paper's template strategy implies: routing a
//! column's control nets with and without the pre-defined critical-net
//! tracks already reserved.

use acim_cell::{Point, Rect};
use acim_layout::{MazeRouter, RouteRequest, RoutingGrid};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn build_router(block_tracks: bool) -> MazeRouter {
    let grid =
        RoutingGrid::new(Rect::new(0.0, 0.0, 20_000.0, 20_000.0), 100.0, 3).expect("grid builds");
    let mut router = MazeRouter::new(
        grid,
        vec!["M2".into(), "M3".into(), "M4".into()],
        vec![false, true, false],
        vec![50.0, 56.0, 56.0],
    )
    .expect("router builds");
    if block_tracks {
        // Pre-defined power/critical tracks become obstacles for the maze
        // search, as in the column template.
        for i in 0..6 {
            let x = 2_000.0 + 3_000.0 * f64::from(i);
            router
                .grid_mut()
                .block_rect(0, &Rect::new(x, 0.0, x + 200.0, 20_000.0));
        }
    }
    router
}

fn requests() -> Vec<RouteRequest> {
    (0..12u32)
        .map(|i| {
            let offset = f64::from(i) * 1_500.0;
            RouteRequest {
                net: format!("net_{i}"),
                net_id: i + 1,
                terminals: vec![
                    (0, Point::new(300.0 + offset % 18_000.0, 200.0)),
                    (0, Point::new(18_000.0 - offset % 17_000.0, 19_000.0)),
                    (0, Point::new(9_000.0, 400.0 + offset % 15_000.0)),
                ],
            }
        })
        .collect()
}

fn router_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("router");
    group.sample_size(10);
    for (name, with_tracks) in [("open_region", false), ("with_predefined_tracks", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut router = build_router(with_tracks);
                let reqs = requests();
                router.reserve_terminals(&reqs);
                let mut segments = 0usize;
                for request in &reqs {
                    let (wires, _vias) = router.route(request).expect("routes");
                    segments += wires.len();
                }
                black_box(segments)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, router_bench);
criterion_main!(benches);
