//! Criterion bench backing the Table 2 design-time claim: the agile
//! design-space exploration of a user-defined array size completes in
//! seconds to minutes, not weeks.

use acim_dse::{DesignSpaceExplorer, DseConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dse_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse_runtime");
    group.sample_size(10);
    for &array_size in &[4 * 1024usize, 16 * 1024] {
        group.bench_with_input(
            BenchmarkId::new("nsga2_explore", array_size),
            &array_size,
            |b, &array_size| {
                let config = DseConfig {
                    array_size,
                    population_size: 40,
                    generations: 20,
                    ..DseConfig::default()
                };
                let explorer = DesignSpaceExplorer::new(config).expect("valid config");
                b.iter(|| {
                    let frontier = explorer.explore().expect("exploration succeeds");
                    black_box(frontier.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, dse_runtime);
criterion_main!(benches);
