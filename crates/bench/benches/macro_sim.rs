//! Criterion bench of the behavioural macro simulator (the reproduction's
//! post-layout-simulation stand-in): MAC + SAR conversion cycles and the
//! Monte-Carlo SNR measurement used for model calibration.

use acim_arch::{measure_snr, AcimMacro, AcimSpec, NoiseConfig};
use acim_tech::Technology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn macro_sim(c: &mut Criterion) {
    let tech = Technology::s28();
    let mut group = c.benchmark_group("macro_sim");
    group.sample_size(10);

    for &(name, h, w, l, b) in &[
        ("64x16_b3", 64usize, 16usize, 4usize, 3u32),
        ("128x32_b5", 128, 32, 4, 5),
    ] {
        let spec = AcimSpec::from_dimensions(h, w, l, b).expect("valid spec");
        group.bench_with_input(
            BenchmarkId::new("mac_and_convert", name),
            &spec,
            |bench, spec| {
                let mut macro_sim =
                    AcimMacro::new(spec, &tech, NoiseConfig::realistic(), 7).expect("macro builds");
                macro_sim.program_with(|row, col| (row * 13 + col * 7) % 3 == 0);
                let activations: Vec<bool> =
                    (0..spec.dot_product_length()).map(|i| i % 2 == 0).collect();
                bench.iter(|| {
                    let out = macro_sim
                        .mac_and_convert(black_box(&activations), 0)
                        .expect("cycle runs");
                    black_box(out[0])
                });
            },
        );
    }

    group.bench_function("measure_snr_32_cycles", |b| {
        let spec = AcimSpec::from_dimensions(128, 16, 8, 4).expect("valid spec");
        b.iter(|| {
            let m = measure_snr(&spec, &tech, NoiseConfig::realistic(), 32, 11)
                .expect("measurement runs");
            black_box(m.snr_db)
        });
    });
    group.finish();
}

criterion_group!(benches, macro_sim);
criterion_main!(benches);
