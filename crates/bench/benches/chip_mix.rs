//! Co-scheduled mix evaluation vs. per-tenant sequential evaluation.
//!
//! A chip serving a three-tenant mix (CNN + transformer + SNN) can be
//! scored two ways: one `evaluate_mix` call that schedules all tenants
//! together, or one single-network evaluation per tenant back to back.
//! The mix path derives each distinct macro's metrics **once for the
//! whole mix** and schedules every tenant against that shared table; the
//! sequential path re-derives the grid per tenant.  On mixed-macro grids
//! (several distinct shapes per chip) that amortisation is the dominant
//! saving, which is exactly the regime a multi-tenant service lives in.
//!
//! `chip_mix/{mix,sequential}` both walk the same 64 mixed-macro 2x2
//! chips serially at a pinned `RAYON_NUM_THREADS=1`.  Because the pair
//! is gated as a within-run *ratio*, the two sides must see the same
//! machine state: each sample is measured as one **adjacent-in-time
//! pair** (a mix sweep and a sequential sweep back to back, order
//! alternating per sample), so a CPU-frequency or contention window
//! skews both medians together and cancels out of the ratio instead of
//! landing on whichever side happened to run inside it.  The setup
//! asserts the refactor's bit-identity guarantee before the clocks
//! start: a mix-of-one reproduces the single-network evaluation bit for
//! bit, and the parallel and serial mix paths agree exactly.

use std::time::{Duration, Instant};

use acim_arch::AcimSpec;
use acim_chip::{ChipEvaluator, ChipSpec, MacroGrid, Network, WorkloadMix};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Upper bound on the samples either bench function will request (the
/// group asks for 10; quick mode caps lower).
const MAX_SAMPLES: usize = 10;

/// One full sweep of the co-scheduled path: score every chip against the
/// whole mix in one call each.
fn mix_sweep(evaluator: &ChipEvaluator, chips: &[ChipSpec], mix: &WorkloadMix) {
    for chip in chips {
        black_box(
            evaluator
                .evaluate_mix_serial(chip, mix)
                .unwrap()
                .makespan_ns,
        );
    }
}

/// One full sweep of the naive path: one single-network evaluation per
/// tenant per chip, back to back.
fn sequential_sweep(evaluator: &ChipEvaluator, chips: &[ChipSpec], mix: &WorkloadMix) {
    for chip in chips {
        for tenant in mix.tenants() {
            black_box(
                evaluator
                    .evaluate_serial(chip, &tenant.network)
                    .unwrap()
                    .latency_ns,
            );
        }
    }
}

fn chip_mix(c: &mut Criterion) {
    // Pin the width before the first rayon call so the comparison is
    // reproducible across runners.
    std::env::set_var(rayon::NUM_THREADS_ENV, "1");

    // The paper's Figure 1 deployment: always-on SNN sensing, bulk CNN
    // recognition, occasional transformer block.
    let mix = WorkloadMix::new("edge-trio")
        .with_tenant(Network::edge_cnn(1), 2.0)
        .with_tenant(Network::transformer_block(), 1.0)
        .with_tenant(Network::snn_pipeline(), 4.0);

    // 64 mixed-macro 2x2 chips from a small catalogue (same population
    // shape as the macro_reuse eval pair): several distinct specs per
    // chip, so per-tenant re-derivation is a real cost.
    let catalogue: Vec<AcimSpec> = [
        (128usize, 32usize, 2usize, 2u32),
        (128, 32, 4, 3),
        (128, 32, 8, 4),
        (64, 64, 4, 3),
        (64, 64, 8, 2),
        (256, 16, 2, 3),
        (256, 16, 4, 2),
        (512, 8, 8, 2),
    ]
    .iter()
    .map(|&(h, w, l, b)| AcimSpec::from_dimensions(h, w, l, b).unwrap())
    .collect();
    let chips: Vec<ChipSpec> = (0..64)
        .map(|i| {
            let tiles: Vec<AcimSpec> = (0..4)
                .map(|t| catalogue[(i * 5 + t * 3) % catalogue.len()])
                .collect();
            ChipSpec::new(MacroGrid::from_specs(2, 2, tiles).unwrap(), 32).unwrap()
        })
        .collect();

    let evaluator = ChipEvaluator::s28_default();

    // Correctness gate before the clocks start.
    for chip in &chips {
        for tenant in mix.tenants() {
            let single = evaluator
                .evaluate_mix_serial(chip, &WorkloadMix::single(tenant.network.clone()))
                .unwrap()
                .combined();
            let plain = evaluator.evaluate_serial(chip, &tenant.network).unwrap();
            assert_eq!(
                single.latency_ns.to_bits(),
                plain.latency_ns.to_bits(),
                "mix-of-one latency drifted from the single-network path"
            );
            assert_eq!(
                single.energy_per_inference_pj.to_bits(),
                plain.energy_per_inference_pj.to_bits(),
                "mix-of-one energy drifted from the single-network path"
            );
        }
        let parallel = evaluator.evaluate_mix(chip, &mix).unwrap();
        let serial = evaluator.evaluate_mix_serial(chip, &mix).unwrap();
        assert_eq!(
            parallel.makespan_ns.to_bits(),
            serial.makespan_ns.to_bits(),
            "parallel and serial mix evaluation disagree"
        );
        assert_eq!(
            parallel.total_energy_pj.to_bits(),
            serial.total_energy_pj.to_bits(),
            "parallel and serial mix evaluation disagree"
        );
    }

    // Paired measurement: one warm-up of each sweep, then MAX_SAMPLES
    // adjacent-in-time (mix, sequential) duration pairs with alternating
    // order.  Both bench functions replay their half of the same pairs
    // through `iter_custom`, so the gated ratio compares measurements
    // taken microseconds apart, not bench-groups apart.
    mix_sweep(&evaluator, &chips, &mix);
    sequential_sweep(&evaluator, &chips, &mix);
    let pairs: Vec<(Duration, Duration)> = (0..MAX_SAMPLES)
        .map(|sample| {
            let time = |f: &dyn Fn()| {
                let start = Instant::now();
                f();
                start.elapsed()
            };
            let mix_half = || mix_sweep(&evaluator, &chips, &mix);
            let sequential_half = || sequential_sweep(&evaluator, &chips, &mix);
            if sample % 2 == 0 {
                let m = time(&mix_half);
                let s = time(&sequential_half);
                (m, s)
            } else {
                let s = time(&sequential_half);
                let m = time(&mix_half);
                (m, s)
            }
        })
        .collect();

    let mut group = c.benchmark_group("chip_mix");
    group.sample_size(MAX_SAMPLES);

    let mut next_mix = 0;
    group.bench_function("mix", |b| {
        b.iter_custom(|_| {
            let duration = pairs[next_mix % pairs.len()].0;
            next_mix += 1;
            duration
        })
    });

    let mut next_sequential = 0;
    group.bench_function("sequential", |b| {
        b.iter_custom(|_| {
            let duration = pairs[next_sequential % pairs.len()].1;
            next_sequential += 1;
            duration
        })
    });
    group.finish();
}

criterion_group!(benches, chip_mix);
criterion_main!(benches);
