//! Telemetry overhead on the chip-evaluation flow.
//!
//! The telemetry layer promises to be *observably passive*: request
//! spans, per-generation histograms, queue/cache gauges and the
//! instrumented stage wrappers must never change results (asserted in
//! `tests/service.rs`) and must cost almost nothing.  This pair times
//! the same quick chip request on two `ExplorationService` instances —
//! one recording telemetry, one carrying a disabled handle — over warm
//! shared caches, the service's steady state, where fixed per-request
//! costs like instrumentation are proportionally largest.
//!
//! The bench gate enforces the budget as a **ratio within this run**
//! (`instrumented / uninstrumented <= 1.05` via `bench_gate
//! --max-ratio`), so the check is immune to the absolute speed of the
//! CI runner; the checked-in baseline additionally catches step-change
//! regressions of either side alone.
//!
//! A 5% budget cannot be resolved by timing one side and then the
//! other on a shared runner: CPU steal and frequency wobble shift
//! whole multi-millisecond windows by far more than 5%.  So the
//! measurement is **paired and interleaved** (via the shim's
//! `iter_custom`): one pass alternates uninstrumented and instrumented
//! requests (swapping which goes first each pair) and collects the two
//! sides' durations separately, so machine-level speed drift hits both
//! sides of the ratio equally and cancels.  Each side reports its
//! per-request median over the pass, which scheduler blips cannot move,
//! and the pair count is sized so the ratio's remaining noise is well
//! under 1% — the 5% budget sits many standard deviations away.
//!
//! The setup asserts instrumented and uninstrumented frontiers are
//! bit-identical before the clocks start.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use easyacim::prelude::*;
use easyacim::service::{ExplorationRequest, ExplorationService, ServiceConfig};

fn quick_chip_config() -> ChipFlowConfig {
    let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
    config.dse.population_size = 16;
    config.dse.generations = 6;
    config.dse.grid_rows = vec![1, 2];
    config.dse.grid_cols = vec![1, 2];
    config.dse.buffer_kib = vec![8, 32];
    config.validate_best = false;
    config
}

fn telemetry(c: &mut Criterion) {
    // Pin the pool width before the first rayon call so both sides
    // schedule identically across runners.
    std::env::set_var(rayon::NUM_THREADS_ENV, "1");

    let instrumented = ExplorationService::new();
    assert!(instrumented.telemetry_handle().is_enabled());
    let uninstrumented =
        ExplorationService::with_config(ServiceConfig::default().without_telemetry());
    assert!(!uninstrumented.telemetry_handle().is_enabled());

    // Correctness gate before timing: telemetry must not perturb the
    // search.  These runs also warm both services' caches, so the timed
    // iterations below compare the steady state.
    let on = instrumented
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    let off = uninstrumented
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_eq!(on.result.front.len(), off.result.front.len());
    for (a, b) in on.result.front.iter().zip(off.result.front.iter()) {
        assert_eq!(a.chip, b.chip, "telemetry changed a frontier point");
        assert_eq!(a.objective_vector(), b.objective_vector());
    }

    const PAIRS: usize = 2048;
    let timed_request = |service: &ExplorationService| {
        let start = Instant::now();
        let response = service
            .run(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap()
            .into_chip()
            .unwrap();
        let elapsed = start.elapsed();
        assert!(response.result.engine.evaluations > 0);
        elapsed
    };

    // One measurement pass shared by both bench functions: PAIRS fully
    // interleaved request pairs, alternating which side goes first to
    // cancel ordering bias, collecting each side's per-request times
    // separately.  Every reported sample is the side's per-request
    // *median* over that single pass: the windows are identical (so
    // machine-level drift cancels out of the gated ratio) and the median
    // is immune to the millisecond-scale scheduler blips that make a
    // sum/sum ratio heavy-tailed.
    let medians: RefCell<Option<(Duration, Duration)>> = RefCell::new(None);
    let measured = || {
        *medians.borrow_mut().get_or_insert_with(|| {
            let mut off = Vec::with_capacity(PAIRS);
            let mut on = Vec::with_capacity(PAIRS);
            for pair in 0..PAIRS {
                if pair % 2 == 0 {
                    off.push(timed_request(&uninstrumented));
                    on.push(timed_request(&instrumented));
                } else {
                    on.push(timed_request(&instrumented));
                    off.push(timed_request(&uninstrumented));
                }
            }
            off.sort();
            on.sort();
            (off[PAIRS / 2], on[PAIRS / 2])
        })
    };

    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);

    group.bench_function("uninstrumented", |b| b.iter_custom(|_| measured().0));
    group.bench_function("instrumented", |b| b.iter_custom(|_| measured().1));
    group.finish();
}

criterion_group!(benches, telemetry);
criterion_main!(benches);
