//! Cache-reuse speedup of the multi-tenant exploration service.
//!
//! `cold` builds a fresh `ExplorationService` per iteration, so every
//! chip-objective evaluation is computed from scratch.  `warm` reuses one
//! long-lived service whose per-space cache was populated by an initial
//! request and whose requests are warm-started from the previous
//! session's Pareto archive — the steady state a production front-end
//! serving repeated requests over one design space reaches.  The gap
//! between the two medians is the evaluation work the shared cache
//! absorbs (the exploration's selection/variation machinery is identical
//! in both).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use easyacim::prelude::*;
use easyacim::service::{ExplorationRequest, ExplorationService};

fn chip_config() -> ChipFlowConfig {
    // A deep network (66 layers) over the full default grid catalogue, so
    // objective evaluation (what the cache absorbs) dominates the
    // per-request cost instead of NSGA-II's selection machinery.
    let mut config = ChipFlowConfig::for_network(Network::edge_cnn(64));
    config.dse.population_size = 32;
    config.dse.generations = 12;
    config.validate_best = false;
    config
}

fn service_warm_vs_cold(c: &mut Criterion) {
    // Pin the width before the first rayon call so the comparison is
    // reproducible across runners.
    std::env::set_var(rayon::NUM_THREADS_ENV, "2");

    let mut group = c.benchmark_group("service_warm_vs_cold");
    group.sample_size(10);

    group.bench_function("cold", |b| {
        b.iter(|| {
            // A fresh service per iteration: empty caches, no session.
            let service = ExplorationService::new();
            let response = service
                .run(ExplorationRequest::chip_space(black_box(chip_config())))
                .unwrap();
            black_box(response.engine().evaluations)
        })
    });

    // One long-lived service; successive requests ride the shared cache
    // and warm-start from the first session's archive.  The session is
    // fixed, so after the first warm request the trajectory's entries are
    // all in the store and steady-state requests are answered from it.
    let service = ExplorationService::new();
    let session = service
        .run(ExplorationRequest::chip_space(chip_config()))
        .unwrap()
        .into_chip()
        .unwrap()
        .session;
    group.bench_function("warm", |b| {
        b.iter(|| {
            let request = ExplorationRequest::chip_space(black_box(chip_config()))
                .warm_start(session.clone());
            let response = service.run(request).unwrap().into_chip().unwrap();
            black_box(response.result.engine.cache.hits)
        })
    });

    group.finish();
}

criterion_group!(benches, service_warm_vs_cold);
criterion_main!(benches);
