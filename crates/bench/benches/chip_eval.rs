//! Chip-level objective-evaluation throughput: the perf baseline for the
//! `acim-chip` analytic evaluator that NSGA-II calls thousands of times
//! per chip exploration.

use acim_arch::AcimSpec;
use acim_chip::{ChipEvaluator, ChipSpec, MacroGrid, Network};
use acim_dse::{ChipDesignProblem, ChipDseConfig};
use acim_moga::Problem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn chip_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip_eval");
    group.sample_size(20);

    let evaluator = ChipEvaluator::s28_default();
    let spec = AcimSpec::from_dimensions(128, 32, 4, 4).expect("valid spec");
    let network = Network::edge_cnn(3);

    for (name, rows, cols) in [("1x1", 1, 1), ("2x2", 2, 2), ("4x4", 4, 4)] {
        let chip = ChipSpec::new(
            MacroGrid::uniform(rows, cols, spec).expect("valid grid"),
            64,
        )
        .expect("valid chip");
        group.bench_with_input(BenchmarkId::new("evaluate_cnn", name), &chip, |b, chip| {
            b.iter(|| {
                black_box(
                    evaluator
                        .evaluate(black_box(chip), &network)
                        .expect("evaluates"),
                )
            })
        });
    }

    // Batch evaluation amortises thread spawning across chips — this is
    // the shape a population-parallel DSE would use.
    let chips: Vec<ChipSpec> = (1..=8)
        .map(|n| {
            ChipSpec::new(MacroGrid::uniform(1, n, spec).expect("valid grid"), 64)
                .expect("valid chip")
        })
        .collect();
    group.bench_function("evaluate_batch_8_chips", |b| {
        b.iter(|| {
            let results = evaluator.evaluate_batch(black_box(&chips), &network);
            black_box(results.len())
        })
    });

    // The full genome → objectives path NSGA-II drives.
    let problem = ChipDesignProblem::new(&ChipDseConfig::for_network(Network::edge_cnn(3)))
        .expect("valid problem");
    let genes = [0.5, 0.3, 0.6, 0.4, 0.4, 0.5];
    group.bench_function("problem_evaluate_genome", |b| {
        b.iter(|| black_box(problem.evaluate(black_box(&genes))))
    });

    group.finish();
}

criterion_group!(benches, chip_eval);
criterion_main!(benches);
