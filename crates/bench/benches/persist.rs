//! Restart cost with and without the persistence tier.
//!
//! `cold_first_request` is a process restart without persistence: a fresh
//! `ExplorationService` computes its first request entirely from scratch.
//! `restored_first_request` is the same restart with a snapshot on disk:
//! the fresh service restores the previous process's caches and session
//! archive (file read + checksum verification + merge included in the
//! measurement), then serves the same request warm-started from the
//! restored archive.  The gap between the two medians is the recomputation
//! a snapshot saves on the first request after a restart — the whole
//! point of durable caches — and the CI gate holds it at ≥1.5×.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use easyacim::prelude::*;
use easyacim::service::{ExplorationRequest, ExplorationService};

fn chip_config() -> ChipFlowConfig {
    // A deep network (66 layers) over a longer run than
    // `service_warm_vs_cold` (24 generations), so objective evaluation —
    // what the restored caches absorb — dominates the per-request cost,
    // not NSGA-II's selection machinery and not the fixed
    // service-construction/restore overhead both sides share.
    let mut config = ChipFlowConfig::for_network(Network::edge_cnn(64));
    config.dse.population_size = 32;
    config.dse.generations = 24;
    config.validate_best = false;
    config
}

fn restored_vs_cold(c: &mut Criterion) {
    // Pin the width before the first rayon call so the comparison is
    // reproducible across runners.
    std::env::set_var(rayon::NUM_THREADS_ENV, "2");

    let mut group = c.benchmark_group("persist");
    group.sample_size(10);

    group.bench_function("cold_first_request", |b| {
        b.iter(|| {
            // A restart without persistence: empty caches, no session.
            let service = ExplorationService::new();
            let response = service
                .run(ExplorationRequest::chip_space(black_box(chip_config())))
                .unwrap();
            black_box(response.engine().evaluations)
        })
    });

    // One donor process ran before the "restart": a cold request, then a
    // warm request seeded from its session — the steady state a
    // production service reaches — and everything was snapshot to disk.
    // The seed session is pinned, so every restored iteration replays the
    // identical warm trajectory the snapshot already carries (exactly the
    // `service_warm_vs_cold` methodology, with a process restart and the
    // file round trip in between).
    let snapshot_path = std::env::temp_dir().join("acim_persist_bench.snap");
    let donor = ExplorationService::new();
    let seed = donor
        .run(ExplorationRequest::chip_space(chip_config()))
        .unwrap()
        .into_chip()
        .unwrap()
        .session;
    donor
        .run(ExplorationRequest::chip_space(chip_config()).warm_start(seed.clone()))
        .unwrap();
    donor.snapshot(&snapshot_path).unwrap();
    let space = seed.space().to_string();

    group.bench_function("restored_first_request", |b| {
        b.iter(|| {
            // The same restart, but restore-then-request: read + verify +
            // merge the snapshot, then serve the first request from it.
            let service = ExplorationService::new();
            let restored = service.restore(black_box(&snapshot_path)).unwrap();
            black_box(restored.evaluations);
            // The session archive came back with the snapshot too.
            assert!(service.archive(&space).is_some());
            let request =
                ExplorationRequest::chip_space(black_box(chip_config())).warm_start(seed.clone());
            let response = service.run(request).unwrap().into_chip().unwrap();
            black_box(response.result.engine.cache.hits)
        })
    });

    group.finish();
    let _ = std::fs::remove_file(&snapshot_path);
}

criterion_group!(benches, restored_vs_cold);
criterion_main!(benches);
