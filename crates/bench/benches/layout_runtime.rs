//! Criterion bench backing the Table 2 / Section 4 claim that layout
//! generation for one Pareto-frontier solution finishes in minutes: measures
//! the column-template build (placement + intra-column routing) and the full
//! macro assembly for a small and a 16 kb specification.

use acim_arch::AcimSpec;
use acim_cell::CellLibrary;
use acim_layout::{ColumnTemplate, LayoutFlow};
use acim_tech::Technology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn layout_runtime(c: &mut Criterion) {
    let tech = Technology::s28();
    let library = CellLibrary::s28_default(&tech);

    let mut group = c.benchmark_group("layout_runtime");
    group.sample_size(10);

    let specs = [
        (
            "1kb_64x16_l4_b3",
            AcimSpec::from_dimensions(64, 16, 4, 3).expect("valid"),
        ),
        (
            "16kb_128x128_l8_b3",
            AcimSpec::from_dimensions(128, 128, 8, 3).expect("valid"),
        ),
    ];
    for (name, spec) in &specs {
        group.bench_with_input(
            BenchmarkId::new("column_template", name),
            spec,
            |b, spec| {
                b.iter(|| {
                    let template = ColumnTemplate::build(spec, &tech, &library).expect("builds");
                    black_box(template.layout.instances.len())
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("full_macro", name), spec, |b, spec| {
            let flow = LayoutFlow::new(&tech, &library);
            b.iter(|| {
                let result = flow.generate(spec).expect("generates");
                black_box(result.metrics.instance_count)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, layout_runtime);
criterion_main!(benches);
