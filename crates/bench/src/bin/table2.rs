//! Reproduces Table 2: "Comparison with Other CIM Design Flow".
//!
//! The qualitative rows (design type, layout automation, design space,
//! parameter determination) are reproduced verbatim; the quantitative claim
//! — that the agile exploration finishes within tens of minutes and a layout
//! within minutes, versus a 1–2 month manual cycle — is backed by measuring
//! the actual wall-clock time of the reproduction's DSE and layout stages on
//! a 16 kb array.
//!
//! Run with `cargo run --release -p acim-bench --bin table2`.

use std::time::Instant;

use acim_bench::{csv::results_dir, CsvWriter};
use easyacim::prelude::*;

fn main() {
    let array_size = 16 * 1024;

    // Measure the design-space exploration.
    let dse_config = DseConfig {
        array_size,
        ..DseConfig::default()
    };
    let explorer = DesignSpaceExplorer::new(dse_config).expect("valid DSE configuration");
    let dse_start = Instant::now();
    let frontier = explorer.explore().expect("exploration succeeds");
    let dse_time = dse_start.elapsed();

    // Measure netlist + layout generation for one frontier solution.
    let tech = Technology::s28();
    let library = CellLibrary::s28_default(&tech);
    let point = frontier
        .best_by(|p| p.metrics.tops_per_watt)
        .copied()
        .expect("frontier is not empty");
    let layout_start = Instant::now();
    let netlist = NetlistGenerator::new(&library)
        .generate(&point.spec)
        .expect("netlist generation succeeds");
    let layout = LayoutFlow::new(&tech, &library)
        .generate(&point.spec)
        .expect("layout generation succeeds");
    let layout_time = layout_start.elapsed();

    println!("Table 2: Comparison with other CIM design flows");
    println!("------------------------------------------------------------------------------");
    println!(
        "{:<28} {:<22} {:<16} {:<16}",
        "Entry", "Traditional flow", "AutoDCIM", "EasyACIM (this repo)"
    );
    println!(
        "{:<28} {:<22} {:<16} {:<16}",
        "Design type", "Analog or Digital", "Digital", "Analog"
    );
    println!(
        "{:<28} {:<22} {:<16} {:<16}",
        "Design of layout", "Manual", "Automatic", "Automatic"
    );
    println!(
        "{:<28} {:<22} {:<16} {:<16}",
        "Design time",
        "1-2 months",
        "NA",
        format!(
            "{:.1} s DSE + {:.1} s layout",
            dse_time.as_secs_f64(),
            layout_time.as_secs_f64()
        )
    );
    println!(
        "{:<28} {:<22} {:<16} {:<16}",
        "Design space", "Fixed", "Unoptimized", "Pareto frontier"
    );
    println!(
        "{:<28} {:<22} {:<16} {:<16}",
        "Parameter determination", "Manual", "User-defined", "Automatic"
    );
    println!("------------------------------------------------------------------------------");
    println!(
        "measured: {} objective evaluations, {} Pareto-frontier points for a {} kb array",
        frontier.engine.evaluations,
        frontier.len(),
        array_size / 1024
    );
    println!(
        "generated netlist `{}` ({} modules) and layout core {:.0} x {:.0} um in {:.2} s",
        netlist.name(),
        netlist.module_count(),
        layout.metrics.core_width_um,
        layout.metrics.core_height_um,
        layout_time.as_secs_f64()
    );
    println!(
        "paper claim: exploration finishes within 30 minutes, layout within a few minutes -> {}",
        if dse_time.as_secs() < 30 * 60 && layout_time.as_secs() < 5 * 60 {
            "holds"
        } else {
            "VIOLATED"
        }
    );

    let mut csv = CsvWriter::new("stage,seconds");
    csv.push_row(format!("dse,{:.3}", dse_time.as_secs_f64()));
    csv.push_row(format!("layout,{:.3}", layout_time.as_secs_f64()));
    if let Ok(path) = csv.write_to(results_dir(), "table2_design_time.csv") {
        println!("wrote {}", path.display());
    }
}
