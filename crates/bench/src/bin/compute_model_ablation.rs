//! Ablation behind Section 2.1 / Figure 2: why EasyACIM picks the charge-
//! redistribution (QR) compute model.
//!
//! The three in-memory compute models — charge summing (QS), current summing
//! (IS) and charge redistribution (QR) — are swept across PVT corners with
//! realistic element mismatch, and the RMS error of the normalised analog
//! accumulation against the ideal value is reported.  The charge-domain
//! models should stay flat across corners while the current-domain model
//! degrades, which is the paper's robustness argument for QR.
//!
//! Run with `cargo run --release -p acim-bench --bin compute_model_ablation`.

use acim_arch::compute_model::{ComputeModel, ComputeModelKind, PvtCondition};
use acim_bench::{csv::results_dir, CsvWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rms_error(kind: ComputeModelKind, pvt: PvtCondition, trials: usize, seed: u64) -> f64 {
    let n = 64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum_sq = 0.0;
    for _ in 0..trials {
        let model = ComputeModel::with_mismatch(kind, n, 0.01, &mut rng);
        let products: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
        let ideal = ComputeModel::ideal_accumulate(&products);
        let actual = model.accumulate(&products, pvt);
        sum_sq += (actual - ideal) * (actual - ideal);
    }
    (sum_sq / trials as f64).sqrt()
}

fn main() {
    let corners = [
        ("nominal", PvtCondition::nominal()),
        (
            "vdd +5%",
            PvtCondition {
                supply_deviation: 0.05,
                temperature_delta_k: 0.0,
            },
        ),
        (
            "vdd -5%",
            PvtCondition {
                supply_deviation: -0.05,
                temperature_delta_k: 0.0,
            },
        ),
        (
            "hot +50K",
            PvtCondition {
                supply_deviation: 0.0,
                temperature_delta_k: 50.0,
            },
        ),
        (
            "vdd +10%, hot +50K",
            PvtCondition {
                supply_deviation: 0.10,
                temperature_delta_k: 50.0,
            },
        ),
    ];

    println!("Compute-model robustness ablation (Section 2.1 / Figure 2)");
    println!("RMS error of the normalised analog accumulation vs ideal, 64-element dot products");
    println!("--------------------------------------------------------------------------");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "PVT corner", "QS", "IS", "QR"
    );
    let mut csv = CsvWriter::new("corner,qs_rms,is_rms,qr_rms");
    for (name, pvt) in corners {
        let qs = rms_error(ComputeModelKind::ChargeSumming, pvt, 400, 1);
        let is = rms_error(ComputeModelKind::CurrentSumming, pvt, 400, 2);
        let qr = rms_error(ComputeModelKind::ChargeRedistribution, pvt, 400, 3);
        println!("{name:<22} {qs:>10.4} {is:>10.4} {qr:>10.4}");
        csv.push_row(format!("{name},{qs:.5},{is:.5},{qr:.5}"));
    }
    println!("--------------------------------------------------------------------------");
    println!("the charge-domain models (QS, QR) stay flat across corners; the current-domain");
    println!("model degrades with supply and temperature - the robustness argument for QR,");
    println!("which additionally supports bottom-plate redistribution and CDAC reuse.");
    if let Ok(path) = csv.write_to(results_dir(), "compute_model_ablation.csv") {
        println!("wrote {}", path.display());
    }
}
