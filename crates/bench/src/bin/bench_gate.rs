//! CI bench-regression gate.
//!
//! Compares the fresh medians a quick-mode bench sweep wrote (via the
//! criterion shim's `ACIM_BENCH_JSON` hook) against the checked-in
//! baseline JSONs, and exits non-zero when a benchmark regressed past
//! tolerance or went missing.
//!
//! ```bash
//! ACIM_BENCH_QUICK=1 ACIM_BENCH_JSON=target/bench-fresh.jsonl \
//!     cargo bench -p acim-bench --bench nsga2_batch --bench chip_eval --bench steal
//! cargo run -p acim-bench --bin bench_gate -- \
//!     --fresh target/bench-fresh.jsonl \
//!     --baseline crates/bench/benches/nsga2_batch_baseline.json \
//!     --baseline crates/bench/benches/chip_eval_baseline.json \
//!     --baseline crates/bench/benches/steal_baseline.json
//! ```
//!
//! The tolerance is a slowdown multiplier (`--tolerance 3.0`, or the
//! `ACIM_BENCH_TOLERANCE` env var): generous, because absolute
//! nanoseconds differ between the machine that recorded a baseline and
//! the CI runner — the gate exists to catch step changes (a serialized
//! parallel path, a quadratic loop), not single-digit noise.

use acim_bench::gate::{
    check_ratio, compare, parse_baseline, parse_fresh, parse_ratio_spec, render_report, Baseline,
    RatioCheck, RatioVerdict, Verdict,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --fresh <jsonl> --baseline <json> [--baseline <json> ...] \
         [--tolerance <multiplier>] [--max-ratio <numerator>:<denominator>:<max> ...] \
         [--report <json>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut fresh_path: Option<String> = None;
    let mut baseline_paths: Vec<String> = Vec::new();
    let mut tolerance: Option<f64> = None;
    let mut ratio_checks: Vec<RatioCheck> = Vec::new();
    let mut report_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--fresh" => fresh_path = Some(args.next().unwrap_or_else(|| usage())),
            "--baseline" => baseline_paths.push(args.next().unwrap_or_else(|| usage())),
            "--report" => report_path = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                tolerance = Some(
                    args.next()
                        .and_then(|value| value.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--max-ratio" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match parse_ratio_spec(&spec) {
                    Ok(check) => ratio_checks.push(check),
                    Err(error) => {
                        eprintln!("bench_gate: {error}");
                        std::process::exit(2);
                    }
                }
            }
            _ => usage(),
        }
    }
    let Some(fresh_path) = fresh_path else {
        usage()
    };
    if baseline_paths.is_empty() {
        usage();
    }
    let tolerance = tolerance
        .or_else(|| {
            std::env::var("ACIM_BENCH_TOLERANCE")
                .ok()
                .and_then(|value| value.parse().ok())
        })
        .unwrap_or(3.0);
    if tolerance < 1.0 {
        eprintln!("tolerance must be >= 1.0 (it is a slowdown multiplier)");
        std::process::exit(2);
    }

    let fresh_text = match std::fs::read_to_string(&fresh_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("bench_gate: cannot read fresh results {fresh_path}: {error}");
            std::process::exit(2);
        }
    };
    let fresh = parse_fresh(&fresh_text);

    let mut baselines: Vec<Baseline> = Vec::new();
    for path in &baseline_paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("bench_gate: cannot read baseline {path}: {error}");
                std::process::exit(2);
            }
        };
        match parse_baseline(&text) {
            Ok(baseline) => baselines.push(baseline),
            Err(error) => {
                eprintln!("bench_gate: malformed baseline {path}: {error}");
                std::process::exit(2);
            }
        }
    }

    let rows = compare(&baselines, &fresh, tolerance);
    // Write the artifact before the pass/fail verdict: a failed gate's
    // report is exactly the one worth inspecting.
    if let Some(path) = &report_path {
        if let Err(error) = std::fs::write(path, render_report(&rows, tolerance)) {
            eprintln!("bench_gate: cannot write report {path}: {error}");
            std::process::exit(2);
        }
    }
    println!(
        "bench-regression gate (tolerance {tolerance:.1}x, {} fresh medians)",
        fresh.len()
    );
    println!(
        "{:<44} {:>14} {:>14} {:>7}  status",
        "benchmark", "baseline_ns", "fresh_ns", "ratio"
    );
    let mut failures = 0usize;
    for row in &rows {
        let (fresh_cell, ratio_cell) = match (row.fresh_ns, row.ratio()) {
            (Some(fresh), Some(ratio)) => (format!("{fresh:.0}"), format!("{ratio:.2}x")),
            _ => ("-".into(), "-".into()),
        };
        let status = match row.verdict {
            Verdict::Pass => "ok",
            Verdict::Regressed => {
                failures += 1;
                "REGRESSED"
            }
            Verdict::Missing => {
                failures += 1;
                "MISSING"
            }
        };
        println!(
            "{:<44} {:>14.0} {:>14} {:>7}  {status}",
            row.id, row.baseline_ns, fresh_cell, ratio_cell
        );
    }
    for check in &ratio_checks {
        let label = format!("{} / {}", check.numerator, check.denominator);
        match check_ratio(check, &fresh) {
            RatioVerdict::Pass(ratio) => {
                println!("ratio {label}: {ratio:.3} <= {:.3}  ok", check.max);
            }
            RatioVerdict::Exceeded(ratio) => {
                failures += 1;
                println!("ratio {label}: {ratio:.3} > {:.3}  EXCEEDED", check.max);
            }
            RatioVerdict::Missing => {
                failures += 1;
                println!("ratio {label}: fresh measurement MISSING");
            }
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} check(s) failed (regressed past {tolerance:.1}x, \
             missing, or over a ratio bound)"
        );
        std::process::exit(1);
    }
    println!(
        "bench_gate: all {} benchmarks within tolerance{}",
        rows.len(),
        if ratio_checks.is_empty() {
            String::new()
        } else {
            format!(", {} ratio bound(s) held", ratio_checks.len())
        }
    );
}
