//! Reproduces Figure 10: EasyACIM's design space versus state-of-the-art
//! ACIM macros in the (energy-efficiency, area) plane.
//!
//! The binary enumerates the design space across several array sizes,
//! extracts the Pareto frontier with respect to (maximise TOPS/W, minimise
//! F²/bit), prints the frontier and the published SOTA points A/B/C, and
//! checks the paper's headline span: energy efficiency from 50 to
//! 750 TOPS/W and area from 1500 to 7500 F²/bit.
//!
//! Run with `cargo run --release -p acim-bench --bin figure10`.

use acim_bench::{csv::results_dir, sota_designs, CsvWriter};
use acim_dse::{enumerate_design_space, DesignPoint};
use acim_model::ModelParams;
use acim_moga::dominance::non_dominated_indices;

fn main() {
    let params = ModelParams::s28_default();
    let mut space: Vec<DesignPoint> = Vec::new();
    for array_size in [4 * 1024, 16 * 1024, 32 * 1024, 64 * 1024] {
        space.extend(
            enumerate_design_space(array_size, 16, 1024, &params).expect("enumeration succeeds"),
        );
    }

    // Efficiency/area ranges of the whole design space.
    let eff_min = space
        .iter()
        .map(|p| p.metrics.tops_per_watt)
        .fold(f64::INFINITY, f64::min);
    let eff_max = space
        .iter()
        .map(|p| p.metrics.tops_per_watt)
        .fold(f64::NEG_INFINITY, f64::max);
    let area_min = space
        .iter()
        .map(|p| p.metrics.area_f2_per_bit)
        .fold(f64::INFINITY, f64::min);
    let area_max = space
        .iter()
        .map(|p| p.metrics.area_f2_per_bit)
        .fold(f64::NEG_INFINITY, f64::max);

    // Pareto frontier in the (−TOPS/W, F²/bit) minimisation plane.
    let objectives: Vec<Vec<f64>> = space
        .iter()
        .map(|p| p.metrics.efficiency_area_vector())
        .collect();
    let mut frontier: Vec<&DesignPoint> = non_dominated_indices(&objectives)
        .into_iter()
        .map(|i| &space[i])
        .collect();
    frontier.sort_by(|a, b| {
        a.metrics
            .area_f2_per_bit
            .partial_cmp(&b.metrics.area_f2_per_bit)
            .expect("area is never NaN")
    });

    println!("Figure 10: EasyACIM design space vs SOTA ACIMs (energy efficiency vs area)");
    println!("----------------------------------------------------------------------------");
    println!(
        "design space: {} points across 4/16/32/64 kb arrays",
        space.len()
    );
    println!(
        "energy efficiency span: {eff_min:.0} - {eff_max:.0} TOPS/W   (paper: 50 - 750 TOPS/W)"
    );
    println!(
        "area span:              {area_min:.0} - {area_max:.0} F2/bit (paper: 1500 - 7500 F2/bit)"
    );
    let span_ok = eff_min <= 80.0 && eff_max >= 600.0 && area_min <= 2200.0 && area_max >= 4500.0;
    println!(
        "headline span check: {}",
        if span_ok {
            "holds (same order and shape as the paper)"
        } else {
            "VIOLATED"
        }
    );

    println!("\nPareto frontier (efficiency vs area):");
    println!(
        "  {:>6} {:>6} {:>4} {:>3} {:>14} {:>14}",
        "H", "W", "L", "B", "TOPS/W", "F2/bit"
    );
    for point in &frontier {
        println!(
            "  {:>6} {:>6} {:>4} {:>3} {:>14.0} {:>14.0}",
            point.spec.height(),
            point.spec.width(),
            point.spec.local_array(),
            point.spec.adc_bits(),
            point.metrics.tops_per_watt,
            point.metrics.area_f2_per_bit
        );
    }

    println!("\nSOTA comparison points:");
    for sota in sota_designs() {
        // A SOTA point is "matched or beaten" if some EasyACIM design is at
        // least as efficient with no more area.
        let beaten = space.iter().any(|p| {
            p.metrics.tops_per_watt >= sota.tops_per_watt
                && p.metrics.area_f2_per_bit <= sota.area_f2_per_bit
        });
        println!(
            "  design {} ({}): {:.0} TOPS/W at {:.0} F2/bit -> {}",
            sota.label,
            sota.reference,
            sota.tops_per_watt,
            sota.area_f2_per_bit,
            if beaten {
                "inside / dominated by the EasyACIM design space"
            } else {
                "outside the generated frontier"
            }
        );
    }

    let mut csv = CsvWriter::new(format!("kind,{}", DesignPoint::csv_header()));
    for point in &space {
        csv.push_row(format!("space,{}", point.to_csv_row()));
    }
    for point in &frontier {
        csv.push_row(format!("frontier,{}", point.to_csv_row()));
    }
    if let Ok(path) = csv.write_to(results_dir(), "figure10_design_space.csv") {
        println!("\nwrote {}", path.display());
    }
    let mut sota_csv = CsvWriter::new("label,reference,tops_per_watt,area_f2_per_bit");
    for sota in sota_designs() {
        sota_csv.push_row(format!(
            "{},{},{},{}",
            sota.label, sota.reference, sota.tops_per_watt, sota.area_f2_per_bit
        ));
    }
    if let Ok(path) = sota_csv.write_to(results_dir(), "figure10_sota_points.csv") {
        println!("wrote {}", path.display());
    }
}
