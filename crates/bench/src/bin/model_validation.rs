//! Validates the analytic estimation model against the behavioural
//! simulator (the reproduction's stand-in for the paper's post-layout
//! simulation, Section 3.2.1).
//!
//! Two calibrations are reported:
//!
//! * the simplified-SNR offset of Equation 11 is fitted against Monte-Carlo
//!   SNR measurements of several (H, L, B_ADC) points and the residual is
//!   printed per point,
//! * the ADC-energy constants k1/k2 of Equation 9 are re-fitted from
//!   sampled energies and compared with the model's own constants.
//!
//! Run with `cargo run --release -p acim-bench --bin model_validation`.

use acim_bench::{csv::results_dir, CsvWriter};
use acim_model::calibrate::{apply_snr_offset, calibrate_adc_energy, calibrate_snr_offset};
use acim_model::{snr_simplified_db, ModelParams};
use easyacim::prelude::*;

fn main() {
    let tech = Technology::s28();
    let specs: Vec<AcimSpec> = [
        (64usize, 16usize, 4usize, 3u32),
        (128, 16, 4, 3),
        (128, 16, 4, 5),
        (128, 16, 8, 3),
        (256, 16, 8, 4),
        (256, 16, 2, 6),
    ]
    .iter()
    .map(|&(h, w, l, b)| AcimSpec::from_dimensions(h, w, l, b).expect("valid spec"))
    .collect();

    println!("SNR model calibration against Monte-Carlo simulation");
    println!("-----------------------------------------------------");
    let report = calibrate_snr_offset(&specs, &tech, 96, 42).expect("calibration succeeds");
    let mut params = ModelParams::s28_default();
    apply_snr_offset(&mut params, report.fitted[0]);
    println!(
        "fitted offset: {:.2} dB, rms residual {:.2} dB over {} points",
        report.fitted[0], report.rms_residual, report.samples
    );
    println!(
        "  {:>18} {:>14} {:>14} {:>10}",
        "spec", "model (dB)", "measured (dB)", "error"
    );
    let mut csv = CsvWriter::new("height,local_array,adc_bits,model_snr_db,measured_snr_db");
    for (spec, (predicted, measured)) in specs.iter().zip(&report.pairs) {
        let model = snr_simplified_db(spec, &params).expect("model evaluation succeeds");
        println!(
            "  {:>18} {:>14.1} {:>14.1} {:>10.1}",
            spec.to_string(),
            model,
            measured,
            model - measured
        );
        let _ = predicted;
        csv.push_row(format!(
            "{},{},{},{:.2},{:.2}",
            spec.height(),
            spec.local_array(),
            spec.adc_bits(),
            model,
            measured
        ));
    }
    if let Ok(path) = csv.write_to(results_dir(), "model_validation_snr.csv") {
        println!("wrote {}", path.display());
    }

    println!("\nADC energy model fit (Equation 9)");
    println!("---------------------------------");
    let truth = acim_arch::EnergyModelParams::s28_default();
    let samples: Vec<(u32, f64)> = (2..=8)
        .map(|bits| (bits, truth.adc_energy(bits).expect("valid bits").value()))
        .collect();
    let fit = calibrate_adc_energy(&samples, truth.vdd).expect("fit succeeds");
    println!(
        "fitted k1 = {:.2} fJ (model {:.2}), k2 = {:.3} fJ (model {:.3}), rms residual {:.3} fJ",
        fit.fitted[0],
        truth.k1.value(),
        fit.fitted[1],
        truth.k2.value(),
        fit.rms_residual
    );
    let mut energy_csv = CsvWriter::new("adc_bits,energy_fj,fitted_fj");
    for ((bits, energy), (fitted, _)) in samples.iter().zip(&fit.pairs) {
        energy_csv.push_row(format!("{bits},{energy:.2},{fitted:.2}"));
    }
    if let Ok(path) = energy_csv.write_to(results_dir(), "model_validation_adc_energy.csv") {
        println!("wrote {}", path.display());
    }
}
