//! Reproduces Figure 9: the EasyACIM design space.
//!
//! Panels (a)(b) show the design space of several array sizes; panels
//! (c)(d), (e)(f) and (g)(h) show the 16 kb space grouped by `H`, `L` and
//! `B_ADC` respectively.  For every panel the binary emits the full scatter
//! series as CSV (one file per grouping) and prints the per-group summary
//! statistics that carry the paper's qualitative claims:
//!
//! * larger arrays reach higher SNR and throughput, smaller arrays are more
//!   efficient and denser,
//! * smaller `H` caps the achievable SNR and costs area,
//! * smaller `L` raises throughput and the SNR upper bound but costs area,
//! * smaller `B_ADC` improves energy efficiency but lowers SNR.
//!
//! Run with `cargo run --release -p acim-bench --bin figure9`.

use acim_bench::{csv::results_dir, CsvWriter};
use acim_dse::sweep::SweepParameter;
use acim_dse::{sweep_by_array_size, sweep_by_parameter, DesignPoint, SweepSeries};
use acim_model::ModelParams;

fn dump_series(csv: &mut CsvWriter, series: &[SweepSeries]) {
    for group in series {
        for point in &group.points {
            csv.push_row(format!(
                "{},{},{}",
                group.parameter,
                group.value,
                point.to_csv_row()
            ));
        }
    }
}

fn summarise(title: &str, series: &[SweepSeries]) {
    println!("{title}");
    println!(
        "  {:>10} {:>8} {:>12} {:>12} {:>14} {:>14}",
        "group", "points", "max SNR(dB)", "max TOPS", "best TOPS/W", "min F2/bit"
    );
    for group in series {
        let max_snr = group
            .points
            .iter()
            .map(|p| p.metrics.snr_db)
            .fold(f64::NEG_INFINITY, f64::max);
        let best_eff = group
            .points
            .iter()
            .map(|p| p.metrics.tops_per_watt)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {:>10} {:>8} {:>12.1} {:>12.3} {:>14.0} {:>14.0}",
            group.value,
            group.points.len(),
            max_snr,
            group.max_throughput_tops(),
            best_eff,
            group.min_area_f2_per_bit()
        );
    }
    println!();
}

fn main() {
    let params = ModelParams::s28_default();
    let header = format!("parameter,group,{}", DesignPoint::csv_header());

    // Panels (a)(b): by array size.
    let sizes = [4 * 1024, 16 * 1024, 64 * 1024];
    let by_size = sweep_by_array_size(&sizes, &params).expect("array-size sweep succeeds");
    summarise(
        "Figure 9(a)(b): design space by array size (4 kb / 16 kb / 64 kb)",
        &by_size,
    );
    let mut csv = CsvWriter::new(header.clone());
    dump_series(&mut csv, &by_size);
    if let Ok(path) = csv.write_to(results_dir(), "figure9_ab_by_array_size.csv") {
        println!("wrote {}\n", path.display());
    }

    // Panels (c)-(h): 16 kb array grouped by H, L and B_ADC.
    let groupings = [
        (
            SweepParameter::Height,
            "Figure 9(c)(d): 16 kb design space by H",
            "figure9_cd_by_h.csv",
        ),
        (
            SweepParameter::LocalArray,
            "Figure 9(e)(f): 16 kb design space by L",
            "figure9_ef_by_l.csv",
        ),
        (
            SweepParameter::AdcBits,
            "Figure 9(g)(h): 16 kb design space by B_ADC",
            "figure9_gh_by_b.csv",
        ),
    ];
    for (parameter, title, file) in groupings {
        let series = sweep_by_parameter(16 * 1024, parameter, &params).expect("sweep succeeds");
        summarise(title, &series);
        let mut csv = CsvWriter::new(header.clone());
        dump_series(&mut csv, &series);
        if let Ok(path) = csv.write_to(results_dir(), file) {
            println!("wrote {}\n", path.display());
        }
    }
}
