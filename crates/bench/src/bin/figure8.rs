//! Reproduces Figure 8: layouts of a 16 kb ACIM with three design
//! specifications (B_ADC = 3).
//!
//! | panel | H × W | L | paper throughput | paper density | paper dimensions |
//! |---|---|---|---|---|---|
//! | (a) | 128 × 128 | 2 | 3.277 TOPS | 4504 F²/bit | 226 µm tall |
//! | (b) | 128 × 128 | 8 | 0.813 TOPS | 2610 F²/bit | 256 × 131 µm |
//! | (c) | 64 × 256  | 8 | 0.813 TOPS | 2977 F²/bit | 510 × 75 µm |
//!
//! The binary generates each netlist and layout with the template-based flow
//! and prints the measured dimensions, density and estimated throughput next
//! to the paper's numbers.
//!
//! Run with `cargo run --release -p acim-bench --bin figure8`.

use acim_bench::{csv::results_dir, CsvWriter};
use easyacim::prelude::*;

struct Panel {
    name: &'static str,
    h: usize,
    w: usize,
    l: usize,
    paper_tops: f64,
    paper_f2_per_bit: f64,
    paper_width_um: Option<f64>,
    paper_height_um: f64,
}

fn main() {
    let panels = [
        Panel {
            name: "(a)",
            h: 128,
            w: 128,
            l: 2,
            paper_tops: 3.277,
            paper_f2_per_bit: 4504.0,
            paper_width_um: Some(256.0),
            paper_height_um: 226.0,
        },
        Panel {
            name: "(b)",
            h: 128,
            w: 128,
            l: 8,
            paper_tops: 0.813,
            paper_f2_per_bit: 2610.0,
            paper_width_um: Some(256.0),
            paper_height_um: 131.0,
        },
        Panel {
            name: "(c)",
            h: 64,
            w: 256,
            l: 8,
            paper_tops: 0.813,
            paper_f2_per_bit: 2977.0,
            paper_width_um: Some(510.0),
            paper_height_um: 75.0,
        },
    ];

    let tech = Technology::s28();
    let library = CellLibrary::s28_default(&tech);
    let params = ModelParams::s28_default();
    let generator = NetlistGenerator::new(&library);
    let flow = LayoutFlow::new(&tech, &library);

    let mut csv = CsvWriter::new(
        "panel,height,width,local_array,adc_bits,measured_tops,paper_tops,measured_f2_per_bit,paper_f2_per_bit,core_width_um,core_height_um,paper_width_um,paper_height_um,snr_db,instances,transistors",
    );

    println!("Figure 8: 16 kb ACIM layouts with various design specifications (B_ADC = 3)");
    println!("--------------------------------------------------------------------------------------------");
    println!(
        "{:<5} {:<16} {:>10} {:>10} {:>12} {:>12} {:>16} {:>16}",
        "panel", "spec", "TOPS", "paper", "F2/bit", "paper", "core (um)", "paper (um)"
    );
    for panel in &panels {
        let spec = AcimSpec::from_dimensions(panel.h, panel.w, panel.l, 3).expect("valid spec");
        let metrics = evaluate(&spec, &params).expect("model evaluation succeeds");
        let netlist = generator
            .generate(&spec)
            .expect("netlist generation succeeds");
        let stats = acim_netlist::design_stats(&netlist, &library).expect("stats");
        let layout = flow.generate(&spec).expect("layout generation succeeds");
        let m = &layout.metrics;
        println!(
            "{:<5} {:<16} {:>10.3} {:>10.3} {:>12.0} {:>12.0} {:>16} {:>16}",
            panel.name,
            format!("{}x{} L={}", panel.h, panel.w, panel.l),
            metrics.throughput_tops,
            panel.paper_tops,
            m.core_area_f2_per_bit,
            panel.paper_f2_per_bit,
            format!("{:.0}x{:.0}", m.core_width_um, m.core_height_um),
            format!(
                "{}x{:.0}",
                panel
                    .paper_width_um
                    .map(|w| format!("{w:.0}"))
                    .unwrap_or_else(|| "-".to_string()),
                panel.paper_height_um
            ),
        );
        csv.push_row(format!(
            "{},{},{},{},3,{:.3},{:.3},{:.0},{:.0},{:.1},{:.1},{},{:.0},{:.2},{},{}",
            panel.name,
            panel.h,
            panel.w,
            panel.l,
            metrics.throughput_tops,
            panel.paper_tops,
            m.core_area_f2_per_bit,
            panel.paper_f2_per_bit,
            m.core_width_um,
            m.core_height_um,
            panel
                .paper_width_um
                .map(|w| format!("{w:.0}"))
                .unwrap_or_default(),
            panel.paper_height_um,
            metrics.snr_db,
            m.instance_count,
            stats.transistors,
        ));
    }
    println!("--------------------------------------------------------------------------------------------");
    println!(
        "shape checks: (a) trades area for 4x the throughput of (b); (c) matches (b)'s throughput"
    );
    println!("with higher SNR (shorter dot product) at ~14% more area - as reported in the paper.");
    if let Ok(path) = csv.write_to(results_dir(), "figure8_layouts.csv") {
        println!("wrote {}", path.display());
    }
}
