//! Minimal CSV output helper used by the experiment binaries.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Accumulates rows and writes them as a CSV file under a results directory.
#[derive(Debug, Clone)]
pub struct CsvWriter {
    header: String,
    rows: Vec<String>,
}

impl CsvWriter {
    /// Creates a writer with a header line (comma-separated column names).
    pub fn new(header: impl Into<String>) -> Self {
        Self {
            header: header.into(),
            rows: Vec::new(),
        }
    }

    /// Appends one pre-formatted row.
    pub fn push_row(&mut self, row: impl Into<String>) {
        self.rows.push(row.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the full CSV contents.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::with_capacity((self.rows.len() + 1) * 32);
        out.push_str(&self.header);
        out.push('\n');
        for row in &self.rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    /// Writes the CSV under `dir/name`, creating the directory if needed,
    /// and returns the written path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing the
    /// file.
    pub fn write_to(&self, dir: impl AsRef<Path>, name: &str) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(name);
        fs::write(&path, self.to_csv_string())?;
        Ok(path)
    }
}

/// The default results directory used by the experiment binaries.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut w = CsvWriter::new("a,b");
        assert!(w.is_empty());
        w.push_row("1,2");
        w.push_row("3,4");
        assert_eq!(w.len(), 2);
        assert_eq!(w.to_csv_string(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn write_to_creates_file() {
        let dir = std::env::temp_dir().join("acim_bench_csv_test");
        let mut w = CsvWriter::new("x");
        w.push_row("42");
        let path = w.write_to(&dir, "t.csv").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("42"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
