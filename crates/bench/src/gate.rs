//! The bench-regression gate: compares fresh medians from the vendored
//! criterion shim (`ACIM_BENCH_JSON` lines) against the checked-in
//! baseline JSONs next to the benches, with a tolerance multiplier.
//!
//! CI runs the quick-mode benches, feeds the fresh JSON-lines file and
//! the baselines to the `bench_gate` binary, and fails the job when any
//! benchmark regressed past tolerance *or went missing* (a bench that
//! silently stopped running is as bad as one that got slower).  Absolute
//! nanoseconds differ across machines, so the tolerance is deliberately
//! generous — the gate catches step-change regressions (an accidentally
//! serialized parallel path, a quadratic loop), not single-digit
//! percentages.
//!
//! The parsers below cover exactly the two formats this workspace emits —
//! flat `{"id":..,"median_ns":..}` lines and baseline files with a flat
//! `"medians_ns"` object — rather than general JSON, which would need a
//! dependency the offline build cannot fetch.

/// One checked-in baseline: the bench group name and its recorded medians.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The benchmark group (`"bench"` field), e.g. `nsga2_batch`.
    pub bench: String,
    /// `(benchmark id within the group, median nanoseconds)`.
    pub medians_ns: Vec<(String, f64)>,
}

/// Verdict for one baseline entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Fresh median within tolerance of the baseline.
    Pass,
    /// Fresh median exceeded `baseline * tolerance`.
    Regressed,
    /// The benchmark produced no fresh measurement at all.
    Missing,
}

/// One row of the gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Fully-qualified benchmark id, `group/name`.
    pub id: String,
    /// Baseline median in nanoseconds.
    pub baseline_ns: f64,
    /// Fresh median in nanoseconds, when the bench ran.
    pub fresh_ns: Option<f64>,
    /// The verdict under the gate's tolerance.
    pub verdict: Verdict,
}

impl GateRow {
    /// Fresh-to-baseline ratio (`>1` is slower), when the bench ran.
    pub fn ratio(&self) -> Option<f64> {
        self.fresh_ns.map(|fresh| fresh / self.baseline_ns.max(1.0))
    }
}

/// Finds the text after `"key":`, skipping occurrences of the quoted key
/// that are not followed by a colon (e.g. the key's name quoted inside a
/// description string), so an unlucky description cannot shadow the field.
fn after_key<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\"");
    let mut search = text;
    while let Some(at) = search.find(&needle) {
        let rest = &search[at + needle.len()..];
        if let Some(after_colon) = rest.trim_start().strip_prefix(':') {
            return Some(after_colon);
        }
        search = rest;
    }
    None
}

/// Extracts the string value of `"key": "value"` from `text`.
fn extract_string_field(text: &str, key: &str) -> Option<String> {
    let value = after_key(text, key)?.trim_start().strip_prefix('"')?;
    Some(value[..value.find('"')?].to_string())
}

/// Extracts the numeric value of `"key": 123` from `text`.
fn extract_number_field(text: &str, key: &str) -> Option<f64> {
    let value = after_key(text, key)?.trim_start();
    let end = value
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

/// Parses one checked-in baseline JSON: the `"bench"` name and the flat
/// `"medians_ns"` object.
///
/// # Errors
///
/// Returns a description of what is missing or malformed.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let bench =
        extract_string_field(text, "bench").ok_or("baseline is missing the \"bench\" field")?;
    let medians_at = text
        .find("\"medians_ns\"")
        .ok_or("baseline is missing the \"medians_ns\" object")?;
    let object = &text[medians_at..];
    let open = object
        .find('{')
        .ok_or("\"medians_ns\" is not followed by an object")?;
    let close = object[open..]
        .find('}')
        .ok_or("unterminated \"medians_ns\" object")?;
    let body = &object[open + 1..open + close];
    let mut medians_ns = Vec::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        // entry is `"name": value`; read the quoted name directly.
        let key = entry
            .strip_prefix('"')
            .and_then(|name| Some(name[..name.find('"')?].to_string()))
            .ok_or_else(|| format!("malformed medians_ns entry: {entry}"))?;
        let value: f64 = entry[entry.find(':').ok_or("entry without value")? + 1..]
            .trim()
            .parse()
            .map_err(|_| format!("non-numeric median in entry: {entry}"))?;
        medians_ns.push((key, value));
    }
    if medians_ns.is_empty() {
        return Err("\"medians_ns\" object holds no entries".into());
    }
    Ok(Baseline { bench, medians_ns })
}

/// Parses the shim's `ACIM_BENCH_JSON` lines into `(id, median_ns)` pairs.
/// A repeated id keeps the **last** line (benches append on re-runs).
pub fn parse_fresh(text: &str) -> Vec<(String, f64)> {
    let mut fresh: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        let Some(id) = extract_string_field(line, "id") else {
            continue;
        };
        let Some(median) = extract_number_field(line, "median_ns") else {
            continue;
        };
        if let Some(existing) = fresh.iter_mut().find(|(name, _)| *name == id) {
            existing.1 = median;
        } else {
            fresh.push((id, median));
        }
    }
    fresh
}

/// A paired-benchmark ratio bound: `fresh[numerator] / fresh[denominator]`
/// must not exceed `max`.  Unlike the absolute baseline comparison, a
/// ratio within one run is immune to how fast the CI machine is — the
/// telemetry-overhead gate (`telemetry/instrumented` vs
/// `telemetry/uninstrumented` at 1.05) is the canonical user.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioCheck {
    /// Fully-qualified id of the numerator benchmark.
    pub numerator: String,
    /// Fully-qualified id of the denominator benchmark.
    pub denominator: String,
    /// Maximum allowed `numerator / denominator`.
    pub max: f64,
}

/// Verdict of one [`RatioCheck`].
#[derive(Debug, Clone, PartialEq)]
pub enum RatioVerdict {
    /// The observed ratio, within bound.
    Pass(f64),
    /// The observed ratio, over bound.
    Exceeded(f64),
    /// One or both benchmarks produced no fresh measurement.
    Missing,
}

/// Parses a `--max-ratio` spec: `numerator:denominator:max`, where the
/// ids are `group/name` pairs (so `:` never collides with an id).
///
/// A bound above 1.0 caps an overhead (instrumented may cost at most 5%
/// over uninstrumented); a bound *below* 1.0 demands a speedup — the
/// persistence gate's `restored:cold:0.67` requires the restored side to
/// be at least 1.5x faster, so the bound only needs to be positive.
///
/// # Errors
///
/// Returns a description of the malformed part.
pub fn parse_ratio_spec(text: &str) -> Result<RatioCheck, String> {
    let mut parts = text.split(':');
    let (Some(numerator), Some(denominator), Some(max), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(format!(
            "ratio spec must be <numerator>:<denominator>:<max>, got {text}"
        ));
    };
    let max: f64 = max
        .parse()
        .map_err(|_| format!("non-numeric ratio bound in spec: {text}"))?;
    if max.is_nan() || max <= 0.0 {
        return Err(format!("ratio bound must be > 0, got {max}"));
    }
    if numerator.is_empty() || denominator.is_empty() {
        return Err(format!("empty benchmark id in ratio spec: {text}"));
    }
    Ok(RatioCheck {
        numerator: numerator.to_string(),
        denominator: denominator.to_string(),
        max,
    })
}

/// Evaluates one ratio bound against the fresh medians.
pub fn check_ratio(check: &RatioCheck, fresh: &[(String, f64)]) -> RatioVerdict {
    let median = |id: &str| {
        fresh
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, median)| *median)
    };
    match (median(&check.numerator), median(&check.denominator)) {
        (Some(numerator), Some(denominator)) => {
            let ratio = numerator / denominator.max(1.0);
            if ratio > check.max {
                RatioVerdict::Exceeded(ratio)
            } else {
                RatioVerdict::Pass(ratio)
            }
        }
        _ => RatioVerdict::Missing,
    }
}

/// Serialises the gate outcome as a machine-readable JSON report (the CI
/// artifact): one object per compared benchmark carrying both the
/// fresh-to-baseline ratio (`> 1` is slower) and its inverse, the
/// `speedup` (`> 1` is faster), so a PR's perf effect is readable from
/// the artifact without re-running the benches.  Missing fresh medians
/// serialise as `null`.
pub fn render_report(rows: &[GateRow], tolerance: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"tolerance\": {tolerance},\n"));
    out.push_str("  \"benches\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let fresh = row
            .fresh_ns
            .map_or_else(|| "null".to_string(), |ns| format!("{ns}"));
        let ratio = row
            .ratio()
            .map_or_else(|| "null".to_string(), |r| format!("{r:.4}"));
        let speedup = match row.ratio() {
            Some(r) if r > 0.0 => format!("{:.4}", 1.0 / r),
            _ => "null".to_string(),
        };
        let verdict = match row.verdict {
            Verdict::Pass => "pass",
            Verdict::Regressed => "regressed",
            Verdict::Missing => "missing",
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"baseline_ns\": {}, \"fresh_ns\": {fresh}, \
             \"ratio\": {ratio}, \"speedup\": {speedup}, \"verdict\": \"{verdict}\"}}{}\n",
            row.id,
            row.baseline_ns,
            if index + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares fresh medians against every baseline entry.  Each baseline key
/// is looked up as `"<bench>/<key>"` in the fresh results; a missing fresh
/// entry is a failure (the bench silently stopped running), as is a fresh
/// median above `baseline * tolerance`.
pub fn compare(baselines: &[Baseline], fresh: &[(String, f64)], tolerance: f64) -> Vec<GateRow> {
    assert!(tolerance >= 1.0, "tolerance is a slowdown multiplier >= 1");
    let mut rows = Vec::new();
    for baseline in baselines {
        for (key, baseline_ns) in &baseline.medians_ns {
            let id = format!("{}/{}", baseline.bench, key);
            let fresh_ns = fresh
                .iter()
                .find(|(name, _)| *name == id)
                .map(|(_, median)| *median);
            let verdict = match fresh_ns {
                None => Verdict::Missing,
                Some(median) if median > baseline_ns * tolerance => Verdict::Regressed,
                Some(_) => Verdict::Pass,
            };
            rows.push(GateRow {
                id,
                baseline_ns: *baseline_ns,
                fresh_ns,
                verdict,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "bench": "nsga2_batch",
  "description": "some text that mentions bench results and medians_ns-like words",
  "machine": { "available_parallelism": 1 },
  "medians_ns": {
    "serial_eval": 1388000,
    "batch_parallel_eval": 1343000.5
  },
  "derived": { "cached_vs_serial_speedup": 1.9 }
}"#;

    #[test]
    fn parses_baseline_name_and_medians() {
        let baseline = parse_baseline(BASELINE).expect("parses");
        assert_eq!(baseline.bench, "nsga2_batch");
        assert_eq!(baseline.medians_ns.len(), 2);
        assert_eq!(baseline.medians_ns[0], ("serial_eval".into(), 1_388_000.0));
        assert_eq!(
            baseline.medians_ns[1],
            ("batch_parallel_eval".into(), 1_343_000.5)
        );
    }

    #[test]
    fn quoted_key_without_a_colon_does_not_shadow_the_field() {
        // A bare "bench" string appearing before the real key (an array
        // element, a description fragment) must be skipped in favour of
        // the occurrence that is actually a key.
        let text = r#"{
  "tags": ["bench", "gate"],
  "bench": "steal",
  "medians_ns": { "serial": 10 }
}"#;
        let baseline = parse_baseline(text).expect("parses");
        assert_eq!(baseline.bench, "steal");
    }

    #[test]
    fn baseline_errors_are_described() {
        assert!(parse_baseline("{}").unwrap_err().contains("bench"));
        assert!(parse_baseline("{\"bench\": \"x\"}")
            .unwrap_err()
            .contains("medians_ns"));
        assert!(parse_baseline("{\"bench\": \"x\", \"medians_ns\": {}}")
            .unwrap_err()
            .contains("no entries"));
    }

    #[test]
    fn parses_fresh_lines_last_entry_wins() {
        let text = "\
{\"id\":\"nsga2_batch/serial_eval\",\"median_ns\":1500000}\n\
garbage line without fields\n\
{\"id\":\"nsga2_batch/serial_eval\",\"median_ns\":1400000}\n\
{\"id\":\"steal/stealing_pool\",\"median_ns\":42}\n";
        let fresh = parse_fresh(text);
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh[0], ("nsga2_batch/serial_eval".into(), 1_400_000.0));
        assert_eq!(fresh[1], ("steal/stealing_pool".into(), 42.0));
    }

    #[test]
    fn compare_flags_regressions_and_missing_benches() {
        let baselines = vec![Baseline {
            bench: "g".into(),
            medians_ns: vec![
                ("fast".into(), 100.0),
                ("slow".into(), 100.0),
                ("gone".into(), 100.0),
            ],
        }];
        let fresh = vec![("g/fast".into(), 150.0), ("g/slow".into(), 400.0)];
        let rows = compare(&baselines, &fresh, 3.0);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].verdict, Verdict::Pass);
        assert_eq!(rows[1].verdict, Verdict::Regressed);
        assert_eq!(rows[2].verdict, Verdict::Missing);
        assert_eq!(rows[1].ratio(), Some(4.0));
        assert_eq!(rows[2].ratio(), None);
    }

    #[test]
    fn ratio_specs_parse_and_reject_malformed_bounds() {
        let check = parse_ratio_spec("telemetry/instrumented:telemetry/uninstrumented:1.05")
            .expect("parses");
        assert_eq!(check.numerator, "telemetry/instrumented");
        assert_eq!(check.denominator, "telemetry/uninstrumented");
        assert!((check.max - 1.05).abs() < 1e-12);

        assert!(parse_ratio_spec("a:b").unwrap_err().contains("ratio spec"));
        assert!(parse_ratio_spec("a:b:c:d")
            .unwrap_err()
            .contains("ratio spec"));
        assert!(parse_ratio_spec("a:b:x")
            .unwrap_err()
            .contains("non-numeric"));
        assert!(parse_ratio_spec("a:b:0").unwrap_err().contains("> 0"));
        assert!(parse_ratio_spec("a:b:-0.5").unwrap_err().contains("> 0"));
        assert!(parse_ratio_spec("a:b:NaN").unwrap_err().contains("> 0"));
        assert!(parse_ratio_spec(":b:1.5").unwrap_err().contains("empty"));

        // Sub-1.0 bounds demand a speedup rather than capping an overhead
        // (the persistence gate's restored-vs-cold check).
        let speedup =
            parse_ratio_spec("persist/restored_first_request:persist/cold_first_request:0.67")
                .expect("parses");
        assert!((speedup.max - 0.67).abs() < 1e-12);
    }

    #[test]
    fn ratio_checks_pass_exceed_and_flag_missing() {
        let fresh = vec![("g/on".into(), 105.0), ("g/off".into(), 100.0)];
        let bound = |max| RatioCheck {
            numerator: "g/on".into(),
            denominator: "g/off".into(),
            max,
        };
        assert_eq!(check_ratio(&bound(1.05), &fresh), RatioVerdict::Pass(1.05));
        assert_eq!(
            check_ratio(&bound(1.04), &fresh),
            RatioVerdict::Exceeded(1.05)
        );
        let gone = RatioCheck {
            numerator: "g/on".into(),
            denominator: "g/gone".into(),
            max: 2.0,
        };
        assert_eq!(check_ratio(&gone, &fresh), RatioVerdict::Missing);
    }

    #[test]
    fn report_serialises_rows_with_ratio_and_speedup() {
        let rows = vec![
            GateRow {
                id: "model_eval/four_objectives".into(),
                baseline_ns: 100.0,
                fresh_ns: Some(50.0),
                verdict: Verdict::Pass,
            },
            GateRow {
                id: "g/gone".into(),
                baseline_ns: 10.0,
                fresh_ns: None,
                verdict: Verdict::Missing,
            },
        ];
        let report = render_report(&rows, 4.0);
        assert!(report.contains("\"tolerance\": 4"));
        assert!(report.contains(
            "{\"id\": \"model_eval/four_objectives\", \"baseline_ns\": 100, \
             \"fresh_ns\": 50, \"ratio\": 0.5000, \"speedup\": 2.0000, \"verdict\": \"pass\"},"
        ));
        assert!(report.contains(
            "{\"id\": \"g/gone\", \"baseline_ns\": 10, \"fresh_ns\": null, \
             \"ratio\": null, \"speedup\": null, \"verdict\": \"missing\"}"
        ));
        // The report must itself round-trip through the fresh-lines parser
        // (it carries "id"/fresh medians in the same key style).
        let parsed = parse_fresh(&report);
        assert_eq!(parsed.len(), 0, "report lines are not bench JSONL");
    }

    #[test]
    fn checked_in_baselines_parse() {
        // The real files CI feeds to the gate must stay parseable.
        for path in [
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/benches/nsga2_batch_baseline.json"
            ),
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/benches/chip_eval_baseline.json"
            ),
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/benches/model_eval_baseline.json"
            ),
            concat!(env!("CARGO_MANIFEST_DIR"), "/benches/steal_baseline.json"),
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/benches/telemetry_baseline.json"
            ),
            concat!(env!("CARGO_MANIFEST_DIR"), "/benches/persist_baseline.json"),
        ] {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("baseline {path} must exist: {e}"));
            let baseline = parse_baseline(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
            assert!(!baseline.medians_ns.is_empty());
        }
    }
}
