//! # acim-bench
//!
//! The experiment harness of the EasyACIM reproduction.
//!
//! Every table and figure of the paper's evaluation section has a matching
//! binary in `src/bin/` that regenerates it (printing the same rows/series
//! the paper reports and writing CSVs under `results/`), plus Criterion
//! benches in `benches/` for the runtime claims:
//!
//! | paper item | binary |
//! |---|---|
//! | Table 2 (flow comparison, design time) | `table2` |
//! | Figure 8 (16 kb layouts, dimensions, TOPS, F²/bit) | `figure8` |
//! | Figure 9 (design-space scatter by array size / H / L / B) | `figure9` |
//! | Figure 10 (efficiency vs area vs SOTA, Pareto frontier) | `figure10` |
//! | model-vs-simulation validation (Sec. 3.2.1) | `model_validation` |
//!
//! The [`sota`] module holds the published metric points of the SOTA
//! designs A/B/C the paper compares against in Figure 10, [`csv`] is a
//! tiny CSV writer shared by the binaries, and [`gate`] backs the
//! `bench_gate` binary CI uses to compare fresh quick-mode bench medians
//! against the checked-in baseline JSONs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod gate;
pub mod sota;

pub use csv::CsvWriter;
pub use sota::{sota_designs, SotaDesign};
