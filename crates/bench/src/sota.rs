//! Published metrics of the state-of-the-art ACIM macros the paper compares
//! against in Figure 10.
//!
//! The paper plots EasyACIM's design space against three silicon designs
//! from JSSC/ISSCC:
//!
//! * design A — the bit-flexible multi-functional macro of reference \[4\]
//!   (Yao et al., JSSC 2023),
//! * design B — the 8T column-ADC macro of reference \[5\] (Yu et al.,
//!   JSSC 2022),
//! * design C — the 7 nm FinFET macro of reference \[8\] (Dong et al.,
//!   ISSCC 2020).
//!
//! Only their reported scalar metrics (energy efficiency and normalised
//! area) enter Figure 10, so those are what this module records; the values
//! are representative figures read from the cited publications.

/// One published comparison point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SotaDesign {
    /// Short label used in the figure ("A", "B", "C").
    pub label: &'static str,
    /// Citation shorthand.
    pub reference: &'static str,
    /// Reported energy efficiency in TOPS/W (1b-equivalent).
    pub tops_per_watt: f64,
    /// Reported bit-cell density in F²/bit.
    pub area_f2_per_bit: f64,
}

/// The three SOTA designs of Figure 10.
pub fn sota_designs() -> [SotaDesign; 3] {
    [
        SotaDesign {
            label: "A",
            reference: "Yao et al., JSSC 2023 [4]",
            tops_per_watt: 240.0,
            area_f2_per_bit: 3100.0,
        },
        SotaDesign {
            label: "B",
            reference: "Yu et al., JSSC 2022 [5]",
            tops_per_watt: 130.0,
            area_f2_per_bit: 2400.0,
        },
        SotaDesign {
            label: "C",
            reference: "Dong et al., ISSCC 2020 [8]",
            tops_per_watt: 351.0,
            area_f2_per_bit: 4700.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sota_points_fall_inside_the_papers_reported_design_space() {
        // Figure 10's axes span roughly 50–750 TOPS/W and 1500–7500 F²/bit;
        // the comparison points must land inside that window for the figure
        // to make sense.
        for design in sota_designs() {
            assert!(
                (50.0..=750.0).contains(&design.tops_per_watt),
                "{} efficiency out of range",
                design.label
            );
            assert!(
                (1500.0..=7500.0).contains(&design.area_f2_per_bit),
                "{} area out of range",
                design.label
            );
            assert!(!design.reference.is_empty());
        }
    }

    #[test]
    fn labels_are_unique() {
        let designs = sota_designs();
        assert_ne!(designs[0].label, designs[1].label);
        assert_ne!(designs[1].label, designs[2].label);
    }
}
