//! The macro-metric reuse layer.
//!
//! A chip exploration evaluates thousands of chip genomes, and every one
//! of them decomposes into per-macro work: closed-form
//! [`DesignMetrics`] plus the macro's cycle time.  Across a whole
//! heterogeneous-grid DSE run only a few hundred **distinct** macro
//! shapes ever occur — the same (H, L, B_ADC) designs recur across
//! thousands of genomes, and across the macro-space explorations the same
//! service is running over the same model parameters.  Before this layer
//! existed, `ChipEvaluator` re-derived those metrics from scratch for
//! every macro of every chip of every generation.
//!
//! [`MacroMetricsCache`] is the shared store closing that loop: a
//! thread-safe, cheaply cloneable handle to one map from quantized
//! [`SpecKey`]s to [`MacroMetrics`], optionally bounded with CLOCK-style
//! eviction (the same [`acim_moga::ClockMap`] core as the genome-level
//! `CacheStore`).  One cache must be paired with **one**
//! `acim_model::ModelParams` — the metrics are a pure function of
//! `(spec, params)`, and the cache trusts its keys exactly as the
//! genome-level store trusts its design space.  Under that pairing a hit
//! returns bit-identical values to a recomputation, so explorations with
//! and without the cache produce identical frontiers.
//!
//! Like `CacheStore`, the cache recovers poisoned locks: one panicking
//! tenant of a multi-tenant service costs its own request, never the
//! shared store.

use acim_model::{DesignMetrics, SpecKey};
use acim_moga::{CacheCounters, CacheStats, SharedCache, TryInsert};

/// Everything the chip evaluator needs per macro, cached as one value:
/// the closed-form design metrics and the macro cycle time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroMetrics {
    /// The estimation-model metrics (SNR, throughput, energy, area).
    pub design: DesignMetrics,
    /// The macro's cycle time in ns (`acim_model::throughput`).
    pub cycle_ns: f64,
}

/// A thread-safe, cheaply cloneable handle to one shared macro-metric
/// map, keyed by quantized [`SpecKey`]s.
///
/// Clones share the underlying entries (`Arc` semantics): the `easyacim`
/// service keeps one cache per model-parameter signature and hands clones
/// to every request's evaluator, so concurrent chip requests — and mixed
/// macro + chip sessions over the same parameters — reuse each other's
/// per-macro work.  Hit/miss attribution lives with the evaluator that
/// consults the cache (see `ChipEvaluator::macro_cache_stats`), not here,
/// mirroring the per-wrapper counters of `CachedProblem`.
#[derive(Clone, Default)]
pub struct MacroMetricsCache {
    shared: SharedCache<SpecKey, MacroMetrics>,
}

impl MacroMetricsCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` distinct macros,
    /// evicting CLOCK-style beyond that.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            shared: SharedCache::bounded(capacity),
        }
    }

    /// Number of distinct macros cached.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// The capacity bound, `None` for unbounded caches.
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity()
    }

    /// Entries evicted since creation (or the last
    /// [`MacroMetricsCache::clear`]), summed over every handle.
    pub fn evictions(&self) -> u64 {
        self.shared.evictions()
    }

    /// Looks up one macro (marking the entry recently used).
    pub fn get(&self, key: &SpecKey) -> Option<MacroMetrics> {
        self.shared.get(key)
    }

    /// Inserts one macro's metrics, reporting whether an existing entry
    /// was evicted to make room.
    pub fn insert(&self, key: SpecKey, metrics: MacroMetrics) -> bool {
        self.shared.insert(key, metrics)
    }

    /// Inserts only when the key is absent (an existing entry is kept and
    /// marked recently used) — the primitive behind
    /// [`MacroCacheClient::get_or_derive`]'s race-tolerant attribution.
    pub fn try_insert(&self, key: SpecKey, metrics: MacroMetrics) -> TryInsert {
        self.shared.try_insert(key, metrics)
    }

    /// Removes every entry and resets the eviction counter.
    pub fn clear(&self) {
        self.shared.clear();
    }

    /// Clones every cached macro derivation out of the map under one
    /// lock round-trip — the export half of snapshot persistence.  Order
    /// is unspecified; snapshot writers sort by [`SpecKey`] for
    /// deterministic files.
    pub fn export_entries(&self) -> Vec<(SpecKey, MacroMetrics)> {
        self.shared.export_entries()
    }

    /// Merges metrics under one lock round-trip, first-wins (live
    /// entries beat imported ones; under the one-cache-one-`ModelParams`
    /// pairing either copy is bit-identical).  Bounded caches accept the
    /// merge CLOCK-style.  Returns `(inserted, skipped)`.
    pub fn import_entries(
        &self,
        entries: impl IntoIterator<Item = (SpecKey, MacroMetrics)>,
    ) -> (usize, usize) {
        self.shared.bulk_insert(entries)
    }

    /// Returns `true` when `other` is a handle to the same underlying map.
    pub fn shares_entries_with(&self, other: &MacroMetricsCache) -> bool {
        self.shared.shares_entries_with(&other.shared)
    }
}

impl std::fmt::Debug for MacroMetricsCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MacroMetricsCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity())
            .field("evictions", &self.evictions())
            .finish()
    }
}

/// One consumer's attributed view of a [`MacroMetricsCache`]: the cache
/// handle (optional — a detached client just derives) plus this
/// consumer's hit/miss/eviction counters.
///
/// The counters are a telemetry-backed [`CacheCounters`] triple, shared
/// across clones, so an evaluator cloned into pool workers still
/// attributes the whole batch to the request that spawned it — while two
/// different requests (two clients) on one shared cache each report
/// their own reuse.  A telemetry registry can adopt the triple (see
/// [`MacroCacheClient::with_counters`]) so exposition reads the very
/// counters the hot path bumps.  Both macro-metric consumers in the
/// workspace (`ChipEvaluator` and the macro-space `AcimDesignProblem`)
/// embed this client, so the lookup/attribution semantics cannot drift
/// apart.
#[derive(Debug, Clone, Default)]
pub struct MacroCacheClient {
    cache: Option<MacroMetricsCache>,
    counters: CacheCounters,
}

impl MacroCacheClient {
    /// A client with no cache: every derivation is computed, nothing is
    /// counted.
    pub fn detached() -> Self {
        Self::default()
    }

    /// A client over a shared cache, with fresh counters.
    pub fn attached(cache: MacroMetricsCache) -> Self {
        Self {
            cache: Some(cache),
            ..Self::default()
        }
    }

    /// The attached cache, when reuse is enabled.
    pub fn cache(&self) -> Option<&MacroMetricsCache> {
        self.cache.as_ref()
    }

    /// Replaces this client's (fresh, zeroed) counters with externally
    /// owned ones — typically registry-vended handles, so a telemetry
    /// layer exposes the same counters the lookups bump.
    #[must_use]
    pub fn with_counters(mut self, counters: CacheCounters) -> Self {
        self.counters = counters;
        self
    }

    /// The client's counter triple (clone it to register with a
    /// telemetry registry).
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Snapshot of this client's (and its clones') attribution.
    pub fn stats(&self) -> CacheStats {
        self.counters.stats()
    }

    /// Returns the cached metrics for `key`, deriving and inserting on a
    /// miss.  Detached clients just run `derive`.
    ///
    /// `derive` runs **outside** the cache lock, so a cold burst of
    /// parallel workers is never serialized by the mutex — each lock
    /// round-trip is just a hash operation.  Two workers racing on one
    /// key may both derive (harmless: the metrics are pure functions of
    /// the key, and [`MacroMetricsCache::try_insert`] keeps exactly one
    /// copy), but attribution stays deterministic: the insert is
    /// first-wins, so the loser counts its lookup as a hit — per request,
    /// `misses` always equals the entries the request actually inserted
    /// and `hits + misses` equals its lookups, on any core count.
    ///
    /// # Errors
    ///
    /// Propagates `derive`'s error; nothing is inserted or counted then.
    pub fn get_or_derive<E>(
        &self,
        key: SpecKey,
        derive: impl FnOnce() -> Result<MacroMetrics, E>,
    ) -> Result<MacroMetrics, E> {
        let Some(cache) = &self.cache else {
            return derive();
        };
        if let Some(metrics) = cache.get(&key) {
            self.counters.hits.inc();
            return Ok(metrics);
        }
        let metrics = derive()?;
        match cache.try_insert(key, metrics) {
            TryInsert::Inserted { evicted } => {
                self.counters.misses.inc();
                if evicted {
                    self.counters.evictions.inc();
                }
            }
            // Raced with another worker that derived the same macro
            // first: by the time we finished, the cache knew the answer.
            TryInsert::AlreadyPresent => {
                self.counters.hits.inc();
            }
        }
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_arch::AcimSpec;
    use acim_model::{evaluate, throughput::cycle_time_ns, ModelParams};

    fn metrics_of(h: usize, w: usize, l: usize, b: u32) -> (SpecKey, MacroMetrics) {
        let spec = AcimSpec::from_dimensions(h, w, l, b).unwrap();
        let params = ModelParams::s28_default();
        (
            SpecKey::of(&spec),
            MacroMetrics {
                design: evaluate(&spec, &params).unwrap(),
                cycle_ns: cycle_time_ns(&spec, &params),
            },
        )
    }

    #[test]
    fn handles_share_entries_and_round_trip_metrics() {
        let cache = MacroMetricsCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), None);
        let (key, metrics) = metrics_of(128, 32, 4, 3);
        let alias = cache.clone();
        assert!(!alias.insert(key, metrics));
        assert_eq!(cache.get(&key), Some(metrics));
        assert_eq!(cache.len(), 1);
        assert!(cache.shares_entries_with(&alias));
        assert!(!cache.shares_entries_with(&MacroMetricsCache::new()));
        assert!(format!("{cache:?}").contains("entries"));
        cache.clear();
        assert!(alias.is_empty());
    }

    #[test]
    fn bounded_cache_evicts_and_stays_within_capacity() {
        let cache = MacroMetricsCache::bounded(2);
        let specs = [(128, 32, 4, 3), (64, 64, 4, 3), (256, 16, 4, 3)];
        let mut evicted = 0;
        for &(h, w, l, b) in &specs {
            let (key, metrics) = metrics_of(h, w, l, b);
            if cache.insert(key, metrics) {
                evicted += 1;
            }
            assert!(cache.len() <= 2);
        }
        assert_eq!(evicted, 1);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.capacity(), Some(2));
    }

    #[test]
    fn poisoned_cache_recovers() {
        let cache = MacroMetricsCache::new();
        let (key, metrics) = metrics_of(128, 32, 4, 3);
        cache.insert(key, metrics);
        let poisoner = cache.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner.shared.lock();
            panic!("tenant panicked while holding the cache lock");
        }));
        assert!(result.is_err());
        assert_eq!(cache.get(&key), Some(metrics));
        cache.insert(metrics_of(64, 64, 4, 3).0, metrics_of(64, 64, 4, 3).1);
        assert_eq!(cache.len(), 2);
    }
}
