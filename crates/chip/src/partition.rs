//! Partitioning a network's layers across the macro grid.
//!
//! This generalises `acim-workloads::mapping` from one matrix on one macro
//! to a whole network on a grid: each layer's weight matrix is cut into
//! **output tiles** (a contiguous run of output rows no wider than the
//! target macro's column count `W`), and every tile costs
//! `ceil(D / N)` MAC+conversion cycles on its macro, where `D` is the
//! layer's dot-product length and `N` the macro's per-cycle dot-product
//! length.  Tiles of one layer run concurrently on different macros; layers
//! run sequentially because layer `i + 1` consumes layer `i`'s outputs.
//!
//! Tiles are placed with deterministic least-finish-time scheduling: the
//! next tile goes to the macro that currently finishes earliest (ties
//! broken by macro index), using per-macro cycle times so heterogeneous
//! grids balance by *time*, not cycle count.

use crate::error::ChipError;
use crate::grid::MacroGrid;
use crate::network::Network;

/// One tile of one layer assigned to one macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileAssignment {
    /// Index of the layer in the network.
    pub layer: usize,
    /// Tile ordinal within the layer.
    pub tile: usize,
    /// First output row covered by the tile.
    pub row_base: usize,
    /// Number of output rows in the tile (≤ the macro's width).
    pub rows: usize,
    /// Flat index of the macro executing the tile.
    pub macro_index: usize,
    /// MAC+conversion cycles the tile costs on that macro
    /// (`ceil(D / N)`).
    pub cycles: u64,
}

/// The placement of one layer: its tiles and the per-macro busy time.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPartition {
    /// Index of the layer in the network.
    pub layer: usize,
    /// MVM shape `(outputs, dot_length)` of the layer.
    pub shape: (usize, usize),
    /// The layer's tiles in placement order.
    pub tiles: Vec<TileAssignment>,
    /// Busy time in ns per macro (zero for unused macros).
    pub busy_ns: Vec<f64>,
}

impl LayerPartition {
    /// The layer's compute latency: the slowest macro's busy time.
    pub fn compute_ns(&self) -> f64 {
        self.busy_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Number of distinct macros used by the layer.
    pub fn macros_used(&self) -> usize {
        self.busy_ns.iter().filter(|&&ns| ns > 0.0).count()
    }
}

/// The placement of a whole network onto a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Per-layer placements, in network order.
    pub layers: Vec<LayerPartition>,
}

impl Partition {
    /// Total tiles across all layers.
    pub fn total_tiles(&self) -> usize {
        self.layers.iter().map(|l| l.tiles.len()).sum()
    }
}

/// Partitions every layer of `network` across `grid`.
///
/// `cycle_time_ns[m]` is the conversion-cycle time of macro `m`; callers
/// derive it from the estimation model (fast path) or the behavioural
/// timing model (validation path) so both agree on the placement.
///
/// # Errors
///
/// Returns [`ChipError::InvalidConfig`] when the network is empty, a layer
/// has a degenerate shape, or `cycle_time_ns` does not match the grid.
pub fn partition_network(
    grid: &MacroGrid,
    network: &Network,
    cycle_time_ns: &[f64],
) -> Result<Partition, ChipError> {
    if network.is_empty() {
        return Err(ChipError::invalid_config(
            "network",
            "network must have at least one layer",
        ));
    }
    if cycle_time_ns.len() != grid.num_macros() {
        return Err(ChipError::invalid_config(
            "cycle_time_ns",
            format!(
                "{} cycle times for {} macros",
                cycle_time_ns.len(),
                grid.num_macros()
            ),
        ));
    }
    if let Some(&bad) = cycle_time_ns.iter().find(|&&t| !t.is_finite() || t <= 0.0) {
        return Err(ChipError::invalid_config(
            "cycle_time_ns",
            format!("cycle times must be positive and finite, got {bad}"),
        ));
    }

    let mut layers = Vec::with_capacity(network.len());
    for (layer_index, layer) in network.layers.iter().enumerate() {
        let (outputs, dot_length) = layer.shape();
        if outputs == 0 || dot_length == 0 {
            return Err(ChipError::invalid_config(
                "layer",
                format!(
                    "layer `{}` has a degenerate {outputs}x{dot_length} shape",
                    layer.name
                ),
            ));
        }

        let mut busy_ns = vec![0.0f64; grid.num_macros()];
        let mut tiles = Vec::new();
        let mut row_base = 0usize;
        let mut tile = 0usize;
        while row_base < outputs {
            // Least-finish-time macro, ties broken by index for determinism.
            let macro_index = (0..grid.num_macros())
                .min_by(|&a, &b| {
                    busy_ns[a]
                        .partial_cmp(&busy_ns[b])
                        .expect("busy times are finite")
                })
                .expect("grid is non-empty");
            let spec = grid.spec(macro_index);
            let rows = (outputs - row_base).min(spec.width());
            let cycles = dot_length.div_ceil(spec.dot_product_length()) as u64;
            busy_ns[macro_index] += cycles as f64 * cycle_time_ns[macro_index];
            tiles.push(TileAssignment {
                layer: layer_index,
                tile,
                row_base,
                rows,
                macro_index,
                cycles,
            });
            row_base += rows;
            tile += 1;
        }

        layers.push(LayerPartition {
            layer: layer_index,
            shape: (outputs, dot_length),
            tiles,
            busy_ns,
        });
    }
    Ok(Partition { layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_arch::AcimSpec;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    fn uniform_grid(rows: usize, cols: usize) -> MacroGrid {
        MacroGrid::uniform(rows, cols, spec(64, 16, 4, 4)).unwrap()
    }

    #[test]
    fn tiles_cover_every_output_row_exactly_once() {
        let grid = uniform_grid(2, 2);
        let network = Network::edge_cnn(2);
        let partition = partition_network(&grid, &network, &[5.0; 4]).unwrap();
        assert_eq!(partition.layers.len(), network.len());
        for (layer, placement) in network.layers.iter().zip(&partition.layers) {
            let (outputs, _) = layer.shape();
            let covered: usize = placement.tiles.iter().map(|t| t.rows).sum();
            assert_eq!(covered, outputs, "layer {}", layer.name);
            let mut next_row = 0;
            for tile in &placement.tiles {
                assert_eq!(tile.row_base, next_row);
                assert!(tile.rows <= 16);
                assert!(tile.cycles > 0);
                next_row += tile.rows;
            }
        }
    }

    #[test]
    fn wide_layers_spread_across_macros() {
        let grid = uniform_grid(2, 2);
        // 64 outputs over width-16 macros → 4 tiles → all 4 macros busy.
        let network = Network::new("wide", vec![Network::edge_cnn(1).layers[1].clone()]);
        let partition = partition_network(&grid, &network, &[5.0; 4]).unwrap();
        assert_eq!(partition.layers[0].tiles.len(), 4);
        assert_eq!(partition.layers[0].macros_used(), 4);
    }

    #[test]
    fn heterogeneous_grids_balance_by_time() {
        // Macro 0 is 4x slower per cycle but has the same shape; the
        // scheduler should push most tiles to macro 1.
        let grid = MacroGrid::from_specs(1, 2, vec![spec(64, 16, 4, 4); 2]).unwrap();
        let network = Network::new("wide", vec![Network::edge_cnn(1).layers[1].clone()]);
        let partition = partition_network(&grid, &network, &[20.0, 5.0]).unwrap();
        let placement = &partition.layers[0];
        let tiles_on_fast = placement
            .tiles
            .iter()
            .filter(|t| t.macro_index == 1)
            .count();
        assert!(
            tiles_on_fast >= 3,
            "fast macro got only {tiles_on_fast} of 4 tiles"
        );
        // 288-long dot product in chunks of 16 → 18 cycles per tile; the
        // slow macro takes one tile (18 × 20 ns), the fast one three
        // (54 × 5 ns), so the layer finishes in 360 ns instead of the
        // 1440 ns serial-on-slow worst case.
        assert!(placement.compute_ns() <= 360.0 + 1e-9);
    }

    #[test]
    fn single_macro_grid_degenerates_to_macro_mapper_tiling() {
        let grid = uniform_grid(1, 1);
        let network = Network::new("one", vec![Network::edge_cnn(1).layers[0].clone()]);
        let partition = partition_network(&grid, &network, &[5.0]).unwrap();
        let placement = &partition.layers[0];
        // 16 outputs on a width-16 macro: one tile; 200-long dot product in
        // chunks of 16 → 13 cycles (matches MacroMapper's div_ceil tiling).
        assert_eq!(placement.tiles.len(), 1);
        assert_eq!(placement.tiles[0].cycles, 13);
        assert_eq!(placement.macros_used(), 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let grid = uniform_grid(1, 1);
        let empty = Network::new("empty", vec![]);
        assert!(partition_network(&grid, &empty, &[5.0]).is_err());
        let network = Network::edge_cnn(1);
        assert!(partition_network(&grid, &network, &[5.0, 5.0]).is_err());
        assert!(partition_network(&grid, &network, &[0.0]).is_err());
        assert!(partition_network(&grid, &network, &[f64::NAN]).is_err());
    }
}
