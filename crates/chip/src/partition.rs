//! Partitioning network layers — one network or a multi-tenant mix —
//! across the macro grid.
//!
//! This generalises `acim-workloads::mapping` from one matrix on one macro
//! to whole networks on a grid: each layer's weight matrix is cut into
//! **output tiles** (a contiguous run of output rows no wider than the
//! target macro's column count `W`), and every tile costs
//! `ceil(D / N) · activation_bits` MAC+conversion cycles on its macro,
//! where `D` is the layer's dot-product length, `N` the macro's per-cycle
//! dot-product length, and `activation_bits` the tenant's bit-serial
//! activation width (1 for the binary default).
//!
//! Tiles are placed with deterministic least-finish-time scheduling: the
//! next tile goes to the macro that currently finishes earliest (ties
//! broken by macro index), using per-macro cycle times so heterogeneous
//! grids balance by *time*, not cycle count.
//!
//! # Co-scheduled streams
//!
//! A [`WorkloadMix`] schedules in **rounds**: round `r` co-schedules layer
//! `r` of every tenant that still has one, because layer `r + 1` of each
//! tenant consumes layer `r`'s outputs while different tenants are
//! independent.  Within a round, tenants place their tiles in mix order
//! onto *shared* per-macro finish times, so a macro loaded by one tenant
//! repels the next tenant's tiles; round boundaries are barriers.  A mix
//! with one binary tenant degenerates exactly to the single-network
//! placement: each round then holds one layer on fresh finish times —
//! [`partition_network`] *is* that degenerate call.

use crate::error::ChipError;
use crate::grid::MacroGrid;
use crate::network::{Network, WorkloadMix};

/// One tile of one layer assigned to one macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileAssignment {
    /// Index of the layer in its network (equals the scheduling round).
    pub layer: usize,
    /// Tile ordinal within the layer.
    pub tile: usize,
    /// First output row covered by the tile.
    pub row_base: usize,
    /// Number of output rows in the tile (≤ the macro's width).
    pub rows: usize,
    /// Flat index of the macro executing the tile.
    pub macro_index: usize,
    /// MAC+conversion cycles the tile costs on that macro
    /// (`ceil(D / N) · activation_bits`).
    pub cycles: u64,
}

/// The placement of one layer: its tiles and the per-macro busy time
/// attributable to *this* layer (other round members excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPartition {
    /// Index of the layer in its network.
    pub layer: usize,
    /// MVM shape `(outputs, dot_length)` of the layer.
    pub shape: (usize, usize),
    /// The layer's tiles in placement order.
    pub tiles: Vec<TileAssignment>,
    /// Busy time in ns per macro (zero for unused macros).
    pub busy_ns: Vec<f64>,
}

impl LayerPartition {
    /// The layer's compute latency: the slowest macro's busy time.
    pub fn compute_ns(&self) -> f64 {
        self.busy_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Number of distinct macros used by the layer.
    pub fn macros_used(&self) -> usize {
        self.busy_ns.iter().filter(|&&ns| ns > 0.0).count()
    }
}

/// The placement of a whole network onto a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Per-layer placements, in network order.
    pub layers: Vec<LayerPartition>,
}

impl Partition {
    /// Total tiles across all layers.
    pub fn total_tiles(&self) -> usize {
        self.layers.iter().map(|l| l.tiles.len()).sum()
    }
}

/// One co-scheduled layer stream: a network plus the activation bit-width
/// its tenant runs at.  The borrowed form lets the evaluator schedule a
/// mix — or a single network wrapped on the stack — without cloning.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec<'a> {
    /// The stream's network.
    pub network: &'a Network,
    /// Bit-serial activation width (`>= 1`); scales every tile's cycles.
    pub activation_bits: u32,
}

impl<'a> StreamSpec<'a> {
    /// A binary-activation stream.
    pub fn binary(network: &'a Network) -> Self {
        Self {
            network,
            activation_bits: 1,
        }
    }
}

/// One scheduling round of a mix: the shared per-macro finish times all
/// member layers accumulated together.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPartition {
    /// Round index (== the layer index each member contributed).
    pub round: usize,
    /// Stream indices participating in the round, in mix order.
    pub members: Vec<usize>,
    /// Shared busy time in ns per macro across all members.
    pub busy_ns: Vec<f64>,
}

impl RoundPartition {
    /// The round's compute latency: the slowest macro's shared busy time.
    pub fn compute_ns(&self) -> f64 {
        self.busy_ns.iter().copied().fold(0.0, f64::max)
    }
}

/// The placement of a whole mix onto a grid: per-stream placements plus
/// the round-level shared schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MixPartition {
    /// Per-stream placements, in mix order.  `streams[t].layers[r]` is
    /// tenant `t`'s layer in round `r`; its `busy_ns` holds only that
    /// tenant's share of the round.
    pub streams: Vec<Partition>,
    /// The rounds, in schedule order.
    pub rounds: Vec<RoundPartition>,
}

impl MixPartition {
    /// Total tiles across all streams.
    pub fn total_tiles(&self) -> usize {
        self.streams.iter().map(Partition::total_tiles).sum()
    }
}

/// Partitions every layer of `network` across `grid`.
///
/// `cycle_time_ns[m]` is the conversion-cycle time of macro `m`; callers
/// derive it from the estimation model (fast path) or the behavioural
/// timing model (validation path) so both agree on the placement.
///
/// This is the degenerate single-stream case of [`partition_streams`];
/// the placement is bit-identical to scheduling a one-tenant mix.
///
/// # Errors
///
/// Returns [`ChipError::InvalidConfig`] when the network is empty, a layer
/// has a degenerate shape, or `cycle_time_ns` does not match the grid.
pub fn partition_network(
    grid: &MacroGrid,
    network: &Network,
    cycle_time_ns: &[f64],
) -> Result<Partition, ChipError> {
    if network.is_empty() {
        return Err(ChipError::invalid_config(
            "network",
            "network must have at least one layer",
        ));
    }
    let mut mix = partition_streams(grid, &[StreamSpec::binary(network)], cycle_time_ns)?;
    Ok(mix.streams.pop().expect("one stream in, one partition out"))
}

/// Partitions a [`WorkloadMix`] across `grid` (see [`partition_streams`]).
///
/// # Errors
///
/// Returns [`ChipError::Workload`] when the mix fails
/// [`WorkloadMix::validate`], and [`ChipError::InvalidConfig`] for grid or
/// cycle-time mismatches.
pub fn partition_mix(
    grid: &MacroGrid,
    mix: &WorkloadMix,
    cycle_time_ns: &[f64],
) -> Result<MixPartition, ChipError> {
    mix.validate()?;
    let streams: Vec<StreamSpec<'_>> = mix
        .tenants()
        .iter()
        .map(|tenant| StreamSpec {
            network: &tenant.network,
            activation_bits: tenant.quant.activation_bits,
        })
        .collect();
    partition_streams(grid, &streams, cycle_time_ns)
}

/// Co-schedules several layer streams onto one grid, round by round.
///
/// Round `r` places layer `r` of every stream that has one, streams in
/// input order, tiles least-finish-time on the round's *shared* per-macro
/// finish times.  Each stream's [`LayerPartition::busy_ns`] keeps only
/// that stream's contribution, so per-tenant and round-level accounting
/// both fall out of one pass.
///
/// # Errors
///
/// Returns [`ChipError::InvalidConfig`] when there are no streams, a
/// stream is empty or degenerate, `activation_bits` is zero, or
/// `cycle_time_ns` does not match the grid.
pub fn partition_streams(
    grid: &MacroGrid,
    streams: &[StreamSpec<'_>],
    cycle_time_ns: &[f64],
) -> Result<MixPartition, ChipError> {
    if streams.is_empty() {
        return Err(ChipError::invalid_config(
            "streams",
            "at least one stream is required",
        ));
    }
    if cycle_time_ns.len() != grid.num_macros() {
        return Err(ChipError::invalid_config(
            "cycle_time_ns",
            format!(
                "{} cycle times for {} macros",
                cycle_time_ns.len(),
                grid.num_macros()
            ),
        ));
    }
    if let Some(&bad) = cycle_time_ns.iter().find(|&&t| !t.is_finite() || t <= 0.0) {
        return Err(ChipError::invalid_config(
            "cycle_time_ns",
            format!("cycle times must be positive and finite, got {bad}"),
        ));
    }
    for stream in streams {
        if stream.network.is_empty() {
            return Err(ChipError::invalid_config(
                "streams",
                format!("network `{}` has no layers", stream.network.name),
            ));
        }
        if stream.activation_bits == 0 {
            return Err(ChipError::invalid_config(
                "streams",
                format!(
                    "network `{}` has activation_bits == 0; must be >= 1",
                    stream.network.name
                ),
            ));
        }
    }

    let num_macros = grid.num_macros();
    let num_rounds = streams
        .iter()
        .map(|s| s.network.len())
        .max()
        .expect("streams is non-empty");
    let mut partitions: Vec<Partition> = streams
        .iter()
        .map(|s| Partition {
            layers: Vec::with_capacity(s.network.len()),
        })
        .collect();
    let mut rounds = Vec::with_capacity(num_rounds);

    for round in 0..num_rounds {
        let mut round_busy = vec![0.0f64; num_macros];
        let mut members = Vec::new();
        for (stream_index, stream) in streams.iter().enumerate() {
            let Some(layer) = stream.network.layers.get(round) else {
                continue;
            };
            members.push(stream_index);
            let (outputs, dot_length) = layer.shape();
            if outputs == 0 || dot_length == 0 {
                return Err(ChipError::invalid_config(
                    "layer",
                    format!(
                        "layer `{}` of `{}` has a degenerate {outputs}x{dot_length} shape",
                        layer.name, stream.network.name
                    ),
                ));
            }

            let mut busy_ns = vec![0.0f64; num_macros];
            let mut tiles = Vec::new();
            let mut row_base = 0usize;
            let mut tile = 0usize;
            while row_base < outputs {
                // Least-finish-time macro on the round's shared finish
                // times, ties broken by index for determinism.
                let macro_index = (0..num_macros)
                    .min_by(|&a, &b| {
                        round_busy[a]
                            .partial_cmp(&round_busy[b])
                            .expect("busy times are finite")
                    })
                    .expect("grid is non-empty");
                let spec = grid.spec(macro_index);
                let rows = (outputs - row_base).min(spec.width());
                let cycles = dot_length.div_ceil(spec.dot_product_length()) as u64
                    * u64::from(stream.activation_bits);
                let delta_ns = cycles as f64 * cycle_time_ns[macro_index];
                round_busy[macro_index] += delta_ns;
                busy_ns[macro_index] += delta_ns;
                tiles.push(TileAssignment {
                    layer: round,
                    tile,
                    row_base,
                    rows,
                    macro_index,
                    cycles,
                });
                row_base += rows;
                tile += 1;
            }

            partitions[stream_index].layers.push(LayerPartition {
                layer: round,
                shape: (outputs, dot_length),
                tiles,
                busy_ns,
            });
        }
        rounds.push(RoundPartition {
            round,
            members,
            busy_ns: round_busy,
        });
    }
    Ok(MixPartition {
        streams: partitions,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_arch::AcimSpec;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    fn uniform_grid(rows: usize, cols: usize) -> MacroGrid {
        MacroGrid::uniform(rows, cols, spec(64, 16, 4, 4)).unwrap()
    }

    #[test]
    fn tiles_cover_every_output_row_exactly_once() {
        let grid = uniform_grid(2, 2);
        let network = Network::edge_cnn(2);
        let partition = partition_network(&grid, &network, &[5.0; 4]).unwrap();
        assert_eq!(partition.layers.len(), network.len());
        for (layer, placement) in network.layers.iter().zip(&partition.layers) {
            let (outputs, _) = layer.shape();
            let covered: usize = placement.tiles.iter().map(|t| t.rows).sum();
            assert_eq!(covered, outputs, "layer {}", layer.name);
            let mut next_row = 0;
            for tile in &placement.tiles {
                assert_eq!(tile.row_base, next_row);
                assert!(tile.rows <= 16);
                assert!(tile.cycles > 0);
                next_row += tile.rows;
            }
        }
    }

    #[test]
    fn wide_layers_spread_across_macros() {
        let grid = uniform_grid(2, 2);
        // 64 outputs over width-16 macros → 4 tiles → all 4 macros busy.
        let network = Network::new("wide", vec![Network::edge_cnn(1).layers[1].clone()]);
        let partition = partition_network(&grid, &network, &[5.0; 4]).unwrap();
        assert_eq!(partition.layers[0].tiles.len(), 4);
        assert_eq!(partition.layers[0].macros_used(), 4);
    }

    #[test]
    fn heterogeneous_grids_balance_by_time() {
        // Macro 0 is 4x slower per cycle but has the same shape; the
        // scheduler should push most tiles to macro 1.
        let grid = MacroGrid::from_specs(1, 2, vec![spec(64, 16, 4, 4); 2]).unwrap();
        let network = Network::new("wide", vec![Network::edge_cnn(1).layers[1].clone()]);
        let partition = partition_network(&grid, &network, &[20.0, 5.0]).unwrap();
        let placement = &partition.layers[0];
        let tiles_on_fast = placement
            .tiles
            .iter()
            .filter(|t| t.macro_index == 1)
            .count();
        assert!(
            tiles_on_fast >= 3,
            "fast macro got only {tiles_on_fast} of 4 tiles"
        );
        // 288-long dot product in chunks of 16 → 18 cycles per tile; the
        // slow macro takes one tile (18 × 20 ns), the fast one three
        // (54 × 5 ns), so the layer finishes in 360 ns instead of the
        // 1440 ns serial-on-slow worst case.
        assert!(placement.compute_ns() <= 360.0 + 1e-9);
    }

    #[test]
    fn single_macro_grid_degenerates_to_macro_mapper_tiling() {
        let grid = uniform_grid(1, 1);
        let network = Network::new("one", vec![Network::edge_cnn(1).layers[0].clone()]);
        let partition = partition_network(&grid, &network, &[5.0]).unwrap();
        let placement = &partition.layers[0];
        // 16 outputs on a width-16 macro: one tile; 200-long dot product in
        // chunks of 16 → 13 cycles (matches MacroMapper's div_ceil tiling).
        assert_eq!(placement.tiles.len(), 1);
        assert_eq!(placement.tiles[0].cycles, 13);
        assert_eq!(placement.macros_used(), 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let grid = uniform_grid(1, 1);
        let empty = Network::new("empty", vec![]);
        assert!(partition_network(&grid, &empty, &[5.0]).is_err());
        let network = Network::edge_cnn(1);
        assert!(partition_network(&grid, &network, &[5.0, 5.0]).is_err());
        assert!(partition_network(&grid, &network, &[0.0]).is_err());
        assert!(partition_network(&grid, &network, &[f64::NAN]).is_err());
        assert!(partition_streams(&grid, &[], &[5.0]).is_err());
        assert!(partition_streams(
            &grid,
            &[StreamSpec {
                network: &network,
                activation_bits: 0
            }],
            &[5.0]
        )
        .is_err());
        let bad_mix = WorkloadMix::new("empty");
        assert!(partition_mix(&grid, &bad_mix, &[5.0]).is_err());
    }

    #[test]
    fn single_stream_matches_partition_network_exactly() {
        let grid =
            MacroGrid::from_specs(1, 2, vec![spec(64, 16, 4, 4), spec(128, 32, 8, 3)]).unwrap();
        let network = Network::edge_cnn(2);
        let cycle = [7.25, 3.5];
        let single = partition_network(&grid, &network, &cycle).unwrap();
        let mix = partition_mix(&grid, &WorkloadMix::single(network.clone()), &cycle).unwrap();
        assert_eq!(mix.streams.len(), 1);
        assert_eq!(mix.streams[0], single);
        for (round, placement) in mix.rounds.iter().zip(&single.layers) {
            assert_eq!(round.members, vec![0]);
            assert_eq!(round.busy_ns, placement.busy_ns);
        }
    }

    #[test]
    fn rounds_share_finish_times_across_tenants() {
        let grid = uniform_grid(1, 2);
        // Two single-layer tenants, each with one tile: the second
        // tenant's tile must avoid the macro the first tenant loaded.
        let layer = Network::edge_cnn(1).layers[0].clone();
        let mut second = Network::new("tenant_b", vec![layer.clone()]);
        second.layers[0].name = "b0".into();
        let mix = WorkloadMix::new("pair")
            .with_tenant(Network::new("tenant_a", vec![layer]), 1.0)
            .with_tenant(second, 1.0);
        let partition = partition_mix(&grid, &mix, &[5.0, 5.0]).unwrap();
        let a_tile = partition.streams[0].layers[0].tiles[0];
        let b_tile = partition.streams[1].layers[0].tiles[0];
        assert_eq!(a_tile.macro_index, 0);
        assert_eq!(b_tile.macro_index, 1, "tenant B must dodge tenant A");
        // The round's shared busy is the sum of both tenants' shares.
        let round = &partition.rounds[0];
        for m in 0..2 {
            assert_eq!(
                round.busy_ns[m],
                partition.streams[0].layers[0].busy_ns[m]
                    + partition.streams[1].layers[0].busy_ns[m]
            );
        }
    }

    #[test]
    fn quantized_tenant_scales_cycles_linearly() {
        let grid = uniform_grid(1, 1);
        let network = Network::new("one", vec![Network::edge_cnn(1).layers[0].clone()]);
        let binary = partition_mix(&grid, &WorkloadMix::single(network.clone()), &[5.0]).unwrap();
        let quant = partition_mix(
            &grid,
            &WorkloadMix::new("q4").with_quantized_tenant(network, 1.0, 4),
            &[5.0],
        )
        .unwrap();
        let base = binary.streams[0].layers[0].tiles[0].cycles;
        assert_eq!(quant.streams[0].layers[0].tiles[0].cycles, base * 4);
    }

    #[test]
    fn uneven_depths_drop_finished_tenants_from_later_rounds() {
        let grid = uniform_grid(2, 2);
        let mix = WorkloadMix::new("uneven")
            .with_tenant(Network::edge_cnn(2), 1.0) // 4 layers
            .with_tenant(Network::snn_pipeline(), 1.0); // 2 layers
        let partition = partition_mix(&grid, &mix, &[5.0; 4]).unwrap();
        assert_eq!(partition.rounds.len(), 4);
        assert_eq!(partition.rounds[0].members, vec![0, 1]);
        assert_eq!(partition.rounds[1].members, vec![0, 1]);
        assert_eq!(partition.rounds[2].members, vec![0]);
        assert_eq!(partition.rounds[3].members, vec![0]);
        assert_eq!(partition.streams[0].layers.len(), 4);
        assert_eq!(partition.streams[1].layers.len(), 2);
    }
}
