//! The chip-level analytic evaluator.
//!
//! Composes the macro estimation model of `acim-model` with the
//! interconnect / global-buffer / accumulation cost model of
//! [`crate::interconnect`] into four chip-level objectives:
//!
//! * **throughput** — effective TOPS over one inference (layer latencies
//!   are serial, tile execution within a layer is parallel),
//! * **energy per inference** — macro MAC energy + digital accumulation +
//!   buffer traffic + NoC traffic + buffer leakage,
//! * **area** — macro arrays + global buffer + routers + adder trees,
//! * **accuracy proxy** — the worst per-layer SNR after the requantisation
//!   penalty of deep partial-sum accumulation.
//!
//! # Multi-tenant mixes
//!
//! The evaluator scores either one [`Network`] or a whole [`WorkloadMix`]
//! ([`ChipEvaluator::evaluate_mix`]).  Both run the same core: the mix
//! partitioner's rounds (see [`crate::partition`]) are costed one by one,
//! each round's latency is the *shared* compute/traffic overlap of all
//! member layers, and every tenant then rolls its rounds up into its own
//! [`ChipMetrics`].  A single binary tenant produces exactly one
//! one-member round per layer, so the single-network path is the
//! degenerate mix bit for bit.  Per-macro derivations are shared across
//! tenants automatically: the grid's macro metrics are folded once per
//! chip (and once per [`MacroMetricsCache`] across chips), no matter how
//! many tenants schedule onto them.
//!
//! Round evaluation is embarrassingly parallel and runs under `rayon`;
//! every per-round quantity is a pure function of `(chip, mix, params)` so
//! the parallel result is bit-identical to the sequential one.

use std::collections::HashMap;
use std::fmt;

use acim_arch::AcimSpec;
use acim_model::{ModelInvariants, ModelParams, SpecKey};
use acim_moga::CacheStats;
use rayon::prelude::*;

use crate::error::ChipError;
use crate::grid::MacroGrid;
use crate::interconnect::ChipCostParams;
use crate::metrics_cache::{MacroCacheClient, MacroMetrics, MacroMetricsCache};
use crate::network::{Network, WorkloadMix};
use crate::partition::{
    partition_streams, LayerPartition, MixPartition, RoundPartition, StreamSpec,
};

/// A complete chip specification: the macro grid plus the sizing of the
/// shared global buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// The macro grid.
    pub grid: MacroGrid,
    /// Global-buffer capacity in KiB.
    pub buffer_kib: usize,
}

impl ChipSpec {
    /// Creates a chip specification.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidConfig`] when the buffer capacity is
    /// zero.
    pub fn new(grid: MacroGrid, buffer_kib: usize) -> Result<Self, ChipError> {
        if buffer_kib == 0 {
            return Err(ChipError::invalid_config(
                "buffer_kib",
                "global buffer capacity must be positive",
            ));
        }
        Ok(Self { grid, buffer_kib })
    }

    /// Buffer capacity in bits.
    pub fn buffer_bits(&self) -> usize {
        self.buffer_kib * 1024 * 8
    }
}

impl fmt::Display for ChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CHIP[{} buf={}KiB]", self.grid, self.buffer_kib)
    }
}

/// Estimated cost of one layer on the chip.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Layer name.
    pub name: String,
    /// Compute latency of *this layer's* tiles (slowest macro) in ns.
    pub compute_ns: f64,
    /// Buffer/NoC traffic latency of this layer's tiles in ns.
    pub traffic_ns: f64,
    /// Latency of the layer's scheduling round in ns: shared
    /// compute/traffic overlap of every co-scheduled layer, plus NoC fill.
    /// Equals the layer's own overlap when it runs alone (single-network
    /// evaluation).
    pub latency_ns: f64,
    /// Macro MAC energy in fJ.
    pub mac_energy_fj: f64,
    /// Digital partial-sum accumulation energy in fJ.
    pub accumulation_energy_fj: f64,
    /// Global-buffer access energy in fJ.
    pub buffer_energy_fj: f64,
    /// Mesh-interconnect energy in fJ.
    pub noc_energy_fj: f64,
    /// How many times the layer's weights are re-staged through the
    /// buffer (1 = fits in one residency).
    pub refetch_factor: usize,
    /// Accuracy proxy: worst macro SNR on this layer after the
    /// requantisation penalty, in dB.
    pub snr_db: f64,
    /// Useful MACs over issued MACs in `(0, 1]`.
    pub utilization: f64,
}

impl LayerCost {
    /// Total layer energy in fJ.
    pub fn energy_fj(&self) -> f64 {
        self.mac_energy_fj
            + self.accumulation_energy_fj
            + self.buffer_energy_fj
            + self.noc_energy_fj
    }
}

/// Chip-level figures of merit for one network (or one tenant of a mix).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipMetrics {
    /// End-to-end latency of one inference in ns.  For a mix tenant this
    /// includes the rounds it shares with other tenants.
    pub latency_ns: f64,
    /// Inferences per second.
    pub inferences_per_s: f64,
    /// Effective throughput in TOPS (2 ops per useful MAC).
    pub throughput_tops: f64,
    /// Energy per inference in pJ (including buffer leakage).
    pub energy_per_inference_pj: f64,
    /// Total chip area in MF² (millions of squared feature sizes).
    pub area_mf2: f64,
    /// End-to-end accuracy proxy: the worst layer SNR in dB.
    pub accuracy_db: f64,
    /// Mean layer utilization.
    pub mean_utilization: f64,
    /// Per-layer cost breakdown, in network order.
    pub layers: Vec<LayerCost>,
}

impl ChipMetrics {
    /// Objectives in the minimisation form matching the macro-level
    /// Equation 12 ordering: `[−accuracy, −throughput, energy, area]`.
    /// Fixed-arity and allocation-free; the hot evaluation paths use this
    /// directly.
    pub fn objective_array(&self) -> [f64; 4] {
        [
            -self.accuracy_db,
            -self.throughput_tops,
            self.energy_per_inference_pj,
            self.area_mf2,
        ]
    }

    /// [`Self::objective_array`] as an owned `Vec` (reporting paths).
    pub fn objective_vector(&self) -> Vec<f64> {
        self.objective_array().to_vec()
    }
}

/// One tenant's share of a mix evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// Tenant name (its network's name).
    pub name: String,
    /// The tenant's arrival weight within the mix.
    pub weight: f64,
    /// The tenant's chip metrics under co-scheduling: latency includes
    /// the rounds it shares, energy counts only its own tiles (plus its
    /// leakage share), accuracy/utilization cover only its layers.
    pub metrics: ChipMetrics,
    /// How many per-tile macro-metric reads this tenant's costing
    /// performed — every one served from the mix's once-per-distinct-macro
    /// derivation, so the count is the tenant's share of the shared-macro
    /// reuse a report attributes per tenant.
    pub macro_reads: usize,
}

/// How a mix's per-tenant metrics aggregate into DSE objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MixObjective {
    /// Optimise the worst tenant on each axis: worst accuracy, worst
    /// throughput, highest per-inference energy (area is chip-global).
    /// The conservative default — no tenant is sacrificed.
    #[default]
    WorstTenant,
    /// Optimise the arrival-weighted mean of each axis — the
    /// traffic-averaged view, which lets a rare heavyweight trade off
    /// against frequent light tenants.
    WeightedMean,
}

/// Figures of merit for a whole [`WorkloadMix`] on one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct MixMetrics {
    /// Per-tenant breakdown, in mix order.
    pub tenants: Vec<TenantMetrics>,
    /// End-to-end latency of one co-scheduled round-trip through every
    /// tenant (the schedule makespan) in ns.
    pub makespan_ns: f64,
    /// Total energy of one mix inference in pJ: every tenant's tiles plus
    /// buffer leakage over the makespan.
    pub total_energy_pj: f64,
    /// Total chip area in MF² (shared by all tenants).
    pub area_mf2: f64,
}

impl MixMetrics {
    /// Returns `true` for the degenerate single-tenant evaluation.
    pub fn is_single(&self) -> bool {
        self.tenants.len() == 1
    }

    /// Aggregated objectives in the chip ordering
    /// `[−accuracy, −throughput, energy, area]`.
    ///
    /// For a single tenant both variants reduce bit-exactly to that
    /// tenant's [`ChipMetrics::objective_array`]: the min/max folds return
    /// the lone element unchanged, and the weighted mean multiplies and
    /// divides by the tenant's own weight sum.
    pub fn objectives(&self, objective: MixObjective) -> [f64; 4] {
        match objective {
            MixObjective::WorstTenant => [
                -self
                    .tenants
                    .iter()
                    .map(|t| t.metrics.accuracy_db)
                    .fold(f64::INFINITY, f64::min),
                -self
                    .tenants
                    .iter()
                    .map(|t| t.metrics.throughput_tops)
                    .fold(f64::INFINITY, f64::min),
                self.tenants
                    .iter()
                    .map(|t| t.metrics.energy_per_inference_pj)
                    .fold(f64::NEG_INFINITY, f64::max),
                self.area_mf2,
            ],
            MixObjective::WeightedMean => {
                let total_weight: f64 = self.tenants.iter().map(|t| t.weight).sum();
                let mean = |value: fn(&TenantMetrics) -> f64| -> f64 {
                    self.tenants
                        .iter()
                        .map(|t| t.weight * value(t))
                        .sum::<f64>()
                        / total_weight
                };
                [
                    -mean(|t| t.metrics.accuracy_db),
                    -mean(|t| t.metrics.throughput_tops),
                    mean(|t| t.metrics.energy_per_inference_pj),
                    self.area_mf2,
                ]
            }
        }
    }

    /// A mix-level [`ChipMetrics`] view for reporting: the single tenant's
    /// metrics unchanged, or (for real mixes) makespan latency, aggregate
    /// throughput over the makespan, total energy, worst-tenant accuracy
    /// and the concatenated tenant-prefixed layer breakdown.
    pub fn combined(&self) -> ChipMetrics {
        if let [tenant] = self.tenants.as_slice() {
            return tenant.metrics.clone();
        }
        let layers: Vec<LayerCost> = self
            .tenants
            .iter()
            .flat_map(|tenant| {
                tenant.metrics.layers.iter().map(|layer| LayerCost {
                    name: format!("{}/{}", tenant.name, layer.name),
                    ..layer.clone()
                })
            })
            .collect();
        // Useful MACs recovered from each tenant's own throughput
        // accounting: T = 2·macs/latency/1000.
        let total_macs: f64 = self
            .tenants
            .iter()
            .map(|t| t.metrics.throughput_tops * t.metrics.latency_ns * 1000.0 / 2.0)
            .sum();
        let accuracy_db = self
            .tenants
            .iter()
            .map(|t| t.metrics.accuracy_db)
            .fold(f64::INFINITY, f64::min);
        let mean_utilization = if layers.is_empty() {
            0.0
        } else {
            layers.iter().map(|l| l.utilization).sum::<f64>() / layers.len() as f64
        };
        ChipMetrics {
            latency_ns: self.makespan_ns,
            inferences_per_s: 1e9 / self.makespan_ns,
            throughput_tops: 2.0 * total_macs / self.makespan_ns / 1000.0,
            energy_per_inference_pj: self.total_energy_pj,
            area_mf2: self.area_mf2,
            accuracy_db,
            mean_utilization,
            layers,
        }
    }
}

/// One tenant's borrowed scheduling view: the stream plus its weight.
#[derive(Debug, Clone, Copy)]
struct TenantStream<'a> {
    stream: StreamSpec<'a>,
    weight: f64,
}

/// Costs of one scheduling round: the shared round latency plus each
/// member's tenant-attributed [`LayerCost`].
struct RoundCost {
    latency_ns: f64,
    members: Vec<(usize, LayerCost)>,
}

/// One member layer's cost body before round-level overlap: everything in
/// [`LayerCost`] except the final latency, plus the round inputs.
struct MemberCost {
    cost: LayerCost,
    traffic_bits: f64,
    fill_hops: usize,
}

/// Evaluates chip specifications against networks — or whole workload
/// mixes — with the analytic model.
///
/// # Macro-metric reuse
///
/// Per-macro work (the closed-form [`acim_model::DesignMetrics`] and the
/// macro cycle time) is folded three ways before it is recomputed:
///
/// 1. **within one chip**, duplicate grid positions share one derivation —
///    a uniform `R × C` grid derives its macro once, not `R · C` times;
/// 2. **across the tenants of a mix**, the per-chip fold happens once for
///    the whole mix, so `T` tenants sharing a grid still derive each
///    distinct macro exactly once;
/// 3. **across chips and requests**, an optional shared
///    [`MacroMetricsCache`] (see [`ChipEvaluator::with_macro_cache`])
///    answers macros any evaluation over the same [`ModelParams`] already
///    derived, with per-evaluator hit/miss attribution
///    ([`ChipEvaluator::macro_cache_stats`]).
///
/// All folds are semantically lossless: the metrics are pure functions
/// of `(spec, params)`, so evaluation results are bit-identical with and
/// without them.
#[derive(Debug, Clone)]
pub struct ChipEvaluator {
    params: ModelParams,
    cost: ChipCostParams,
    // Per-ModelParams quantities of the macro estimation model, hoisted
    // once at construction; macro derivations are pure arithmetic.
    invariants: ModelInvariants,
    // Clones share the client's counters, so one request's attribution
    // survives the batch fan-out.
    macro_client: MacroCacheClient,
}

impl ChipEvaluator {
    /// Creates an evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] when either parameter set is invalid.
    pub fn new(params: ModelParams, cost: ChipCostParams) -> Result<Self, ChipError> {
        let invariants = ModelInvariants::new(&params)?;
        cost.validate()?;
        Ok(Self {
            params,
            cost,
            invariants,
            macro_client: MacroCacheClient::detached(),
        })
    }

    /// Evaluator with the default 28 nm parameters.
    pub fn s28_default() -> Self {
        Self::new(ModelParams::s28_default(), ChipCostParams::s28_default())
            .expect("default parameters validate")
    }

    /// The macro estimation-model parameters in use.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The chip cost parameters in use.
    pub fn cost(&self) -> &ChipCostParams {
        &self.cost
    }

    /// Installs a shared macro-metric cache and resets this evaluator's
    /// hit/miss attribution.
    ///
    /// The cache must be paired with evaluators over **one**
    /// [`ModelParams`] value — the entries are pure functions of
    /// `(spec, params)` and the cache trusts its keys.  The counters stay
    /// per evaluator (shared only with its own clones), so on a
    /// service-shared cache every request reports its own reuse.
    #[must_use]
    pub fn with_macro_cache(mut self, cache: MacroMetricsCache) -> Self {
        self.macro_client = MacroCacheClient::attached(cache);
        self
    }

    /// The installed macro-metric cache, when reuse is enabled.
    pub fn macro_cache(&self) -> Option<&MacroMetricsCache> {
        self.macro_client.cache()
    }

    /// Hit/miss/eviction attribution of this evaluator (and its clones)
    /// against the installed macro-metric cache.  One lookup is counted
    /// per **distinct** macro per evaluated chip; duplicate grid
    /// positions — and duplicate tenants of a mix — are folded before the
    /// cache is consulted, so the counters measure cross-chip reuse, not
    /// grid shape or mix width.  All zeros when no cache is installed.
    pub fn macro_cache_stats(&self) -> CacheStats {
        self.macro_client.stats()
    }

    /// Derives one macro's metrics, consulting the shared cache when one
    /// is installed.  Racing workers may both derive the same macro (the
    /// derivation runs outside the cache lock and is a pure function, so
    /// the duplicate work is harmless), but attribution stays
    /// deterministic — see [`MacroCacheClient::get_or_derive`].
    fn macro_metrics(&self, key: SpecKey, spec: &AcimSpec) -> Result<MacroMetrics, ChipError> {
        self.macro_client.get_or_derive(key, || {
            Ok(MacroMetrics {
                design: self.invariants.evaluate_spec(spec),
                cycle_ns: self.invariants.cycle_time_ns(spec.adc_bits()),
            })
        })
    }

    /// Derives the per-grid-position macro metrics of one chip, folding
    /// duplicate positions onto one derivation.
    fn grid_macro_metrics(&self, grid: &MacroGrid) -> Result<Vec<MacroMetrics>, ChipError> {
        let mut by_key: HashMap<SpecKey, MacroMetrics> = HashMap::new();
        let mut metrics = Vec::with_capacity(grid.specs().len());
        for spec in grid.specs() {
            let key = SpecKey::of(spec);
            let entry = match by_key.get(&key) {
                Some(&entry) => entry,
                None => {
                    let entry = self.macro_metrics(key, spec)?;
                    by_key.insert(key, entry);
                    entry
                }
            };
            metrics.push(entry);
        }
        Ok(metrics)
    }

    /// Evaluates one chip on one network, fanning the per-round costs out
    /// across worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] when the network is empty or a macro
    /// specification fails the estimation model.
    pub fn evaluate(&self, chip: &ChipSpec, network: &Network) -> Result<ChipMetrics, ChipError> {
        self.evaluate_impl(chip, network, true)
    }

    /// Evaluates one chip on one network without spawning worker threads.
    ///
    /// Bit-identical to [`ChipEvaluator::evaluate`] (the parallel map is
    /// order-preserving over pure per-round functions).  Batch callers use
    /// this inside their own population-level fan-out: parallelising
    /// across chips scales better than across a handful of rounds, and
    /// nesting both oversubscribes the cores.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] when the network is empty or a macro
    /// specification fails the estimation model.
    pub fn evaluate_serial(
        &self,
        chip: &ChipSpec,
        network: &Network,
    ) -> Result<ChipMetrics, ChipError> {
        self.evaluate_impl(chip, network, false)
    }

    fn evaluate_impl(
        &self,
        chip: &ChipSpec,
        network: &Network,
        parallel: bool,
    ) -> Result<ChipMetrics, ChipError> {
        if network.is_empty() {
            return Err(ChipError::invalid_config(
                "network",
                "network must have at least one layer",
            ));
        }
        // The single network is the degenerate one-tenant mix: same core,
        // no clones, bit-identical rollup.
        let mix = self.evaluate_streams_impl(
            chip,
            &[TenantStream {
                stream: StreamSpec::binary(network),
                weight: 1.0,
            }],
            parallel,
        )?;
        let tenant = mix.tenants.into_iter().next().expect("one tenant in");
        Ok(tenant.metrics)
    }

    /// Evaluates one chip on a whole workload mix, fanning the per-round
    /// costs out across worker threads.
    ///
    /// Shared macros are derived once for the whole mix (and reused across
    /// chips through the optional [`MacroMetricsCache`]); each tenant's
    /// rollup covers only its own layers, with round latencies shared.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] when the mix fails
    /// [`WorkloadMix::validate`] or a macro specification fails the
    /// estimation model.
    pub fn evaluate_mix(
        &self,
        chip: &ChipSpec,
        mix: &WorkloadMix,
    ) -> Result<MixMetrics, ChipError> {
        self.evaluate_mix_impl(chip, mix, true)
    }

    /// Evaluates one chip on a mix without spawning worker threads;
    /// bit-identical to [`ChipEvaluator::evaluate_mix`].
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] when the mix fails
    /// [`WorkloadMix::validate`] or a macro specification fails the
    /// estimation model.
    pub fn evaluate_mix_serial(
        &self,
        chip: &ChipSpec,
        mix: &WorkloadMix,
    ) -> Result<MixMetrics, ChipError> {
        self.evaluate_mix_impl(chip, mix, false)
    }

    fn evaluate_mix_impl(
        &self,
        chip: &ChipSpec,
        mix: &WorkloadMix,
        parallel: bool,
    ) -> Result<MixMetrics, ChipError> {
        mix.validate()?;
        let tenants: Vec<TenantStream<'_>> = mix
            .tenants()
            .iter()
            .map(|tenant| TenantStream {
                stream: StreamSpec {
                    network: &tenant.network,
                    activation_bits: tenant.quant.activation_bits,
                },
                weight: tenant.weight,
            })
            .collect();
        self.evaluate_streams_impl(chip, &tenants, parallel)
    }

    /// The shared evaluation core: schedules the streams, costs every
    /// round (in parallel when asked), and rolls the rounds up per tenant
    /// and for the mix.
    fn evaluate_streams_impl(
        &self,
        chip: &ChipSpec,
        tenants: &[TenantStream<'_>],
        parallel: bool,
    ) -> Result<MixMetrics, ChipError> {
        let grid = &chip.grid;
        // One derivation per distinct macro for the whole mix
        // (cache-assisted when a shared macro-metric cache is installed),
        // fanned back out to every grid position.
        let macro_metrics = self.grid_macro_metrics(grid)?;
        let cycle_ns: Vec<f64> = macro_metrics.iter().map(|m| m.cycle_ns).collect();
        let streams: Vec<StreamSpec<'_>> = tenants.iter().map(|t| t.stream).collect();
        let partition = partition_streams(grid, &streams, &cycle_ns)?;

        // Per-round costs are independent — evaluate them in parallel on
        // scoped work-stealing helpers (unless the caller already
        // parallelises at a coarser grain, as the batch paths do).
        // Order is preserved by `collect`, keeping results deterministic.
        let round_costs: Vec<RoundCost> = if parallel {
            partition
                .rounds
                .par_iter()
                .map(|round| self.round_cost(chip, tenants, round, &partition, &macro_metrics))
                .collect()
        } else {
            partition
                .rounds
                .iter()
                .map(|round| self.round_cost(chip, tenants, round, &partition, &macro_metrics))
                .collect()
        };

        let makespan_ns = round_costs
            .iter()
            .map(|r| r.latency_ns)
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        let area_mf2 = self.chip_area_f2(chip, &macro_metrics) / 1e6;

        // Hand each member cost back to its tenant, in round order.
        let mut tenant_layers: Vec<Vec<LayerCost>> = tenants
            .iter()
            .map(|t| Vec::with_capacity(t.stream.network.len()))
            .collect();
        for round in round_costs {
            for (tenant_index, cost) in round.members {
                tenant_layers[tenant_index].push(cost);
            }
        }

        let mix_layer_energy_fj: f64 = tenant_layers
            .iter()
            .map(|layers| layers.iter().map(LayerCost::energy_fj).sum::<f64>())
            .sum();
        let mix_leakage_fj =
            self.cost.buffer.leakage_fj_per_ns_per_kib * chip.buffer_kib as f64 * makespan_ns;

        let tenant_metrics = tenants
            .iter()
            .zip(tenant_layers)
            .enumerate()
            .map(|(tenant_index, (tenant, layers))| TenantMetrics {
                name: tenant.stream.network.name.clone(),
                weight: tenant.weight,
                metrics: self.rollup_metrics(chip, tenant.stream.network, layers, area_mf2),
                macro_reads: partition.streams[tenant_index].total_tiles(),
            })
            .collect();

        Ok(MixMetrics {
            tenants: tenant_metrics,
            makespan_ns,
            total_energy_pj: (mix_layer_energy_fj + mix_leakage_fj) / 1000.0,
            area_mf2,
        })
    }

    /// Rolls one tenant's round costs up into its chip metrics.  This is
    /// the pre-mix single-network aggregation, unchanged: summed round
    /// latencies, own energy plus leakage over the tenant's latency, worst
    /// own SNR, mean own utilization.
    fn rollup_metrics(
        &self,
        chip: &ChipSpec,
        network: &Network,
        layers: Vec<LayerCost>,
        area_mf2: f64,
    ) -> ChipMetrics {
        let compute_latency_ns: f64 = layers.iter().map(|l| l.latency_ns).sum();
        let latency_ns = compute_latency_ns.max(f64::MIN_POSITIVE);
        let leakage_fj =
            self.cost.buffer.leakage_fj_per_ns_per_kib * chip.buffer_kib as f64 * latency_ns;
        let energy_fj: f64 = layers.iter().map(LayerCost::energy_fj).sum::<f64>() + leakage_fj;

        let useful_macs = network.total_macs() as f64;
        let throughput_tops = 2.0 * useful_macs / latency_ns / 1000.0;
        let accuracy_db = layers
            .iter()
            .map(|l| l.snr_db)
            .fold(f64::INFINITY, f64::min);
        let mean_utilization =
            layers.iter().map(|l| l.utilization).sum::<f64>() / layers.len() as f64;

        ChipMetrics {
            latency_ns,
            inferences_per_s: 1e9 / latency_ns,
            throughput_tops,
            energy_per_inference_pj: energy_fj / 1000.0,
            area_mf2,
            accuracy_db,
            mean_utilization,
            layers,
        }
    }

    /// Total chip area in F²: macro arrays + buffer + routers + adders.
    /// The per-macro area comes from the already-derived metrics (the
    /// estimation model computes it as part of the macro evaluation, so no
    /// re-derivation is needed); `area_f2_per_bit` already amortises the
    /// macro periphery.
    fn chip_area_f2(&self, chip: &ChipSpec, macro_metrics: &[MacroMetrics]) -> f64 {
        let macro_area: f64 = chip
            .grid
            .specs()
            .iter()
            .zip(macro_metrics)
            .map(|(spec, metrics)| metrics.design.area_f2_per_bit * spec.array_size() as f64)
            .sum();
        let buffer_area = chip.buffer_bits() as f64 * self.cost.buffer.area_f2_per_bit;
        let router_area = chip.grid.num_macros() as f64 * self.cost.interconnect.router_area_f2;
        let adder_area: f64 = chip
            .grid
            .specs()
            .iter()
            .map(|spec| spec.width() as f64 * self.cost.accumulator.adder_area_f2_per_column)
            .sum();
        macro_area + buffer_area + router_area + adder_area
    }

    /// Costs one scheduling round: each member layer's own energies and
    /// traffic, then the shared round latency — the slowest macro of the
    /// round's *combined* schedule overlapped with the members' combined
    /// traffic, plus the farthest member's NoC fill.
    fn round_cost(
        &self,
        chip: &ChipSpec,
        tenants: &[TenantStream<'_>],
        round: &RoundPartition,
        partition: &MixPartition,
        macro_metrics: &[MacroMetrics],
    ) -> RoundCost {
        let mut members = Vec::with_capacity(round.members.len());
        let mut traffic_bits = 0.0f64;
        let mut fill_hops = 0usize;
        for &tenant_index in &round.members {
            let placement = &partition.streams[tenant_index].layers[round.round];
            let member = self.member_cost(
                chip,
                tenants[tenant_index].stream.network,
                placement,
                macro_metrics,
            );
            traffic_bits += member.traffic_bits;
            fill_hops = fill_hops.max(member.fill_hops);
            members.push((tenant_index, member.cost));
        }

        let round_compute_ns = round.compute_ns();
        let traffic_ns = traffic_bits / self.cost.buffer.bandwidth_bits_per_ns;
        // Double buffering overlaps compute and traffic; the mesh adds a
        // pipeline-fill delay to the farthest used macro.
        let fill_ns = fill_hops as f64 * self.cost.interconnect.hop_latency_ns;
        let latency_ns = round_compute_ns.max(traffic_ns) + fill_ns;
        for (_, cost) in &mut members {
            cost.latency_ns = latency_ns;
        }
        RoundCost {
            latency_ns,
            members,
        }
    }

    /// Costs one member layer's placement: everything that is purely its
    /// own — energies, SNR, utilization, its private compute/traffic
    /// figures — leaving the shared round latency to [`Self::round_cost`].
    fn member_cost(
        &self,
        chip: &ChipSpec,
        network: &Network,
        placement: &LayerPartition,
        macro_metrics: &[MacroMetrics],
    ) -> MemberCost {
        let layer = &network.layers[placement.layer];
        let (outputs, dot_length) = placement.shape;
        let weight_bits = (outputs * dot_length) as f64;

        // Working set: the layer's weights plus one activation vector and
        // one output vector (32-bit partials).  When it exceeds the buffer,
        // weights are re-staged `refetch_factor` times.
        let working_set_bits = weight_bits + dot_length as f64 + 32.0 * outputs as f64;
        let refetch_factor = (working_set_bits / chip.buffer_bits() as f64)
            .ceil()
            .max(1.0);

        let mut mac_energy_fj = 0.0;
        let mut accumulation_energy_fj = 0.0;
        let mut buffer_read_bits = 0.0;
        let mut buffer_write_bits = 0.0;
        let mut noc_bit_hops = 0.0;
        let mut issued_macs = 0.0;
        for tile in &placement.tiles {
            let spec = chip.grid.spec(tile.macro_index);
            let metrics = &macro_metrics[tile.macro_index];
            let chunks = tile.cycles as f64;
            // The macro switches its whole array every cycle regardless of
            // how many columns the tile fills.
            issued_macs += chunks * spec.macs_per_cycle() as f64;
            mac_energy_fj +=
                chunks * spec.macs_per_cycle() as f64 * metrics.design.energy_per_mac_fj;
            // One digital add folds each chunk's ADC code per output row.
            accumulation_energy_fj +=
                chunks * tile.rows as f64 * self.cost.accumulator.add_energy_fj;

            // Traffic per tile: weights in, activations in, codes out.
            let tile_weight_bits = (tile.rows * dot_length) as f64 * refetch_factor;
            let activation_bits = dot_length as f64;
            let code_bits = chunks * tile.rows as f64 * f64::from(spec.adc_bits());
            buffer_read_bits += tile_weight_bits + activation_bits;
            buffer_write_bits += code_bits;
            let hops = chip.grid.hops_from_buffer(tile.macro_index) as f64;
            noc_bit_hops += (tile_weight_bits + activation_bits + code_bits) * hops;
        }

        let buffer_energy_fj = buffer_read_bits * self.cost.buffer.read_energy_fj_per_bit
            + buffer_write_bits * self.cost.buffer.write_energy_fj_per_bit;
        let noc_energy_fj = noc_bit_hops * self.cost.interconnect.hop_energy_fj_per_bit;

        let compute_ns = placement.compute_ns();
        let traffic_bits = buffer_read_bits + buffer_write_bits;
        let traffic_ns = traffic_bits / self.cost.buffer.bandwidth_bits_per_ns;
        let fill_hops = placement
            .tiles
            .iter()
            .map(|t| chip.grid.hops_from_buffer(t.macro_index))
            .max()
            .unwrap_or(0);

        // Accuracy proxy: the worst macro SNR on this layer, degraded by
        // the requantisation loss of accumulating many chunks.
        let snr_db = placement
            .tiles
            .iter()
            .map(|tile| {
                let chunks = tile.cycles as f64;
                macro_metrics[tile.macro_index].design.snr_db
                    - self.cost.accumulator.requant_penalty_db_per_doubling * chunks.log2().max(0.0)
            })
            .fold(f64::INFINITY, f64::min);

        MemberCost {
            cost: LayerCost {
                name: layer.name.clone(),
                compute_ns,
                traffic_ns,
                latency_ns: 0.0, // set by round_cost once the round closes
                mac_energy_fj,
                accumulation_energy_fj,
                buffer_energy_fj,
                noc_energy_fj,
                refetch_factor: refetch_factor as usize,
                snr_db,
                utilization: (weight_bits / issued_macs).min(1.0),
            },
            traffic_bits,
            fill_hops,
        }
    }

    /// Evaluates many chips at once (used by the DSE problem); one
    /// work-stealing task **per chip**, so a large grid or deep network on
    /// one chip does not stall the rest of the batch (each chip's rounds
    /// are still costed serially to avoid nested fan-out).  The tasks
    /// borrow the caller's slice in place on the scoped executor — no
    /// per-batch clones of the specs, evaluator or network.  Deterministic
    /// in input order.
    pub fn evaluate_batch(
        &self,
        chips: &[ChipSpec],
        network: &Network,
    ) -> Vec<Result<ChipMetrics, ChipError>> {
        chips
            .par_iter()
            .with_max_len(1)
            .map(|chip| self.evaluate_serial(chip, network))
            .collect()
    }

    /// Mix counterpart of [`ChipEvaluator::evaluate_batch`]: one
    /// work-stealing task per chip, each scoring the whole mix serially.
    /// Deterministic in input order.
    pub fn evaluate_mix_batch(
        &self,
        chips: &[ChipSpec],
        mix: &WorkloadMix,
    ) -> Vec<Result<MixMetrics, ChipError>> {
        chips
            .par_iter()
            .with_max_len(1)
            .map(|chip| self.evaluate_mix_serial(chip, mix))
            .collect()
    }
}

/// Convenience: partitions and evaluates in one call with default
/// parameters (used by examples and benches).
///
/// # Errors
///
/// Returns [`ChipError`] when evaluation fails.
pub fn evaluate_chip(chip: &ChipSpec, network: &Network) -> Result<ChipMetrics, ChipError> {
    ChipEvaluator::s28_default().evaluate(chip, network)
}

/// Convenience: evaluates a whole mix with default parameters.
///
/// # Errors
///
/// Returns [`ChipError`] when evaluation fails.
pub fn evaluate_chip_mix(chip: &ChipSpec, mix: &WorkloadMix) -> Result<MixMetrics, ChipError> {
    ChipEvaluator::s28_default().evaluate_mix(chip, mix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_arch::AcimSpec;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    fn chip(rows: usize, cols: usize, buffer_kib: usize) -> ChipSpec {
        ChipSpec::new(
            MacroGrid::uniform(rows, cols, spec(128, 32, 4, 4)).unwrap(),
            buffer_kib,
        )
        .unwrap()
    }

    #[test]
    fn evaluation_produces_finite_positive_metrics() {
        let metrics = evaluate_chip(&chip(2, 2, 64), &Network::edge_cnn(2)).unwrap();
        assert!(metrics.latency_ns > 0.0 && metrics.latency_ns.is_finite());
        assert!(metrics.throughput_tops > 0.0);
        assert!(metrics.energy_per_inference_pj > 0.0);
        assert!(metrics.area_mf2 > 0.0);
        assert!(metrics.accuracy_db.is_finite());
        assert!(metrics.mean_utilization > 0.0 && metrics.mean_utilization <= 1.0);
        assert_eq!(metrics.layers.len(), 4);
        let v = metrics.objective_vector();
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|o| o.is_finite()));
    }

    #[test]
    fn more_macros_cut_latency_but_cost_area() {
        let small = evaluate_chip(&chip(1, 1, 64), &Network::edge_cnn(2)).unwrap();
        let big = evaluate_chip(&chip(2, 2, 64), &Network::edge_cnn(2)).unwrap();
        assert!(
            big.latency_ns < small.latency_ns,
            "grid should parallelise tiles"
        );
        assert!(big.area_mf2 > small.area_mf2);
    }

    #[test]
    fn tiny_buffers_refetch_and_pay_energy() {
        let net = Network::edge_cnn(2);
        // block layers hold 64×288 = 18 KiB of weight bits ≈ 2.25 KiB.
        let tight = evaluate_chip(&chip(2, 2, 1), &net).unwrap();
        let roomy = evaluate_chip(&chip(2, 2, 64), &net).unwrap();
        assert!(tight.layers.iter().any(|l| l.refetch_factor > 1));
        assert!(roomy.layers.iter().all(|l| l.refetch_factor == 1));
        let tight_buffer: f64 = tight.layers.iter().map(|l| l.buffer_energy_fj).sum();
        let roomy_buffer: f64 = roomy.layers.iter().map(|l| l.buffer_energy_fj).sum();
        assert!(tight_buffer > roomy_buffer);
        // …but the big buffer costs area.
        assert!(roomy.area_mf2 > tight.area_mf2);
    }

    #[test]
    fn evaluation_is_deterministic_with_parallel_layers() {
        let chip = chip(2, 3, 32);
        let net = Network::edge_cnn(4);
        let evaluator = ChipEvaluator::s28_default();
        let a = evaluator.evaluate(&chip, &net).unwrap();
        let b = evaluator.evaluate(&chip, &net).unwrap();
        assert_eq!(a, b, "parallel evaluation must be bit-deterministic");
    }

    #[test]
    fn serial_evaluation_is_bit_identical_to_parallel() {
        let chip = chip(3, 2, 32);
        let net = Network::edge_cnn(5);
        let evaluator = ChipEvaluator::s28_default();
        assert_eq!(
            evaluator.evaluate(&chip, &net).unwrap(),
            evaluator.evaluate_serial(&chip, &net).unwrap(),
        );
    }

    #[test]
    fn batch_evaluation_matches_individual_runs() {
        let chips = vec![chip(1, 1, 32), chip(1, 2, 32), chip(2, 2, 32)];
        let net = Network::transformer_block();
        let evaluator = ChipEvaluator::s28_default();
        let batch = evaluator.evaluate_batch(&chips, &net);
        for (chip, result) in chips.iter().zip(batch) {
            assert_eq!(result.unwrap(), evaluator.evaluate(chip, &net).unwrap());
        }
    }

    #[test]
    fn accuracy_proxy_tracks_macro_snr() {
        let net = Network::transformer_block();
        let low_b =
            ChipSpec::new(MacroGrid::uniform(1, 2, spec(128, 32, 4, 2)).unwrap(), 32).unwrap();
        let high_b =
            ChipSpec::new(MacroGrid::uniform(1, 2, spec(128, 32, 4, 5)).unwrap(), 32).unwrap();
        let low = evaluate_chip(&low_b, &net).unwrap();
        let high = evaluate_chip(&high_b, &net).unwrap();
        assert!(high.accuracy_db > low.accuracy_db);
    }

    #[test]
    fn macro_cache_reuse_is_bit_identical_and_attributed() {
        let net = Network::edge_cnn(3);
        let chips = vec![chip(2, 2, 64), chip(1, 2, 32), chip(2, 2, 64)];
        let plain = ChipEvaluator::s28_default();
        let cache = crate::MacroMetricsCache::new();
        let reusing = ChipEvaluator::s28_default().with_macro_cache(cache.clone());
        for c in &chips {
            assert_eq!(
                plain.evaluate(c, &net).unwrap(),
                reusing.evaluate(c, &net).unwrap(),
                "macro-metric reuse must not change results"
            );
        }
        // All three chips use the same macro shape: duplicate grid
        // positions fold within each chip, so the cache sees one lookup
        // per chip — one miss, then two cross-chip hits.
        let stats = reusing.macro_cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(cache.len(), 1);
        // The plain evaluator reports no attribution.
        assert_eq!(plain.macro_cache_stats(), acim_moga::CacheStats::default());
        assert!(reusing.macro_cache().is_some());
    }

    #[test]
    fn batch_clones_attribute_to_the_originating_evaluator() {
        let net = Network::transformer_block();
        let cache = crate::MacroMetricsCache::new();
        let evaluator = ChipEvaluator::s28_default().with_macro_cache(cache.clone());
        let chips = vec![chip(1, 1, 32), chip(2, 2, 32), chip(1, 2, 32)];
        let batch = evaluator.evaluate_batch(&chips, &net);
        assert!(batch.iter().all(Result::is_ok));
        // The batch path clones the evaluator into pool workers; the
        // clones share the original's counters, so the request-level
        // evaluator sees the whole batch: one distinct macro shape across
        // all three chips -> 1 miss + 2 hits.
        let stats = evaluator.macro_cache_stats();
        assert_eq!(stats.total(), 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn heterogeneous_grid_folds_duplicate_positions() {
        let net = Network::edge_cnn(2);
        let mixed = ChipSpec::new(
            MacroGrid::from_specs(
                2,
                2,
                vec![
                    spec(128, 32, 4, 4),
                    spec(64, 64, 4, 3),
                    spec(128, 32, 4, 4),
                    spec(64, 64, 4, 3),
                ],
            )
            .unwrap(),
            64,
        )
        .unwrap();
        let cache = crate::MacroMetricsCache::new();
        let reusing = ChipEvaluator::s28_default().with_macro_cache(cache.clone());
        let with_cache = reusing.evaluate(&mixed, &net).unwrap();
        let without = ChipEvaluator::s28_default().evaluate(&mixed, &net).unwrap();
        assert_eq!(with_cache, without);
        // Four grid positions, two distinct shapes: two lookups, both
        // misses on a cold cache.
        assert_eq!(reusing.macro_cache_stats().total(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn empty_network_and_zero_buffer_rejected() {
        assert!(ChipSpec::new(MacroGrid::uniform(1, 1, spec(128, 32, 4, 4)).unwrap(), 0).is_err());
        let evaluator = ChipEvaluator::s28_default();
        let empty = Network::new("empty", vec![]);
        assert!(evaluator.evaluate(&chip(1, 1, 32), &empty).is_err());
    }

    #[test]
    fn single_tenant_mix_is_bit_identical_to_network_path() {
        let evaluator = ChipEvaluator::s28_default();
        for (c, net) in [
            (chip(2, 2, 64), Network::edge_cnn(2)),
            (chip(1, 2, 8), Network::transformer_block()),
            (chip(3, 1, 16), Network::snn_pipeline()),
        ] {
            let single = evaluator.evaluate(&c, &net).unwrap();
            let mix = evaluator
                .evaluate_mix(&c, &WorkloadMix::single(net.clone()))
                .unwrap();
            assert!(mix.is_single());
            assert_eq!(mix.tenants[0].metrics, single);
            assert_eq!(mix.tenants[0].name, net.name);
            assert_eq!(mix.makespan_ns.to_bits(), single.latency_ns.to_bits());
            assert_eq!(
                mix.total_energy_pj.to_bits(),
                single.energy_per_inference_pj.to_bits()
            );
            assert_eq!(mix.area_mf2.to_bits(), single.area_mf2.to_bits());
            // Both objective aggregations reduce to the tenant's own.
            let expected = single.objective_array();
            for mode in [MixObjective::WorstTenant, MixObjective::WeightedMean] {
                let got = mix.objectives(mode);
                for (g, e) in got.iter().zip(expected.iter()) {
                    assert_eq!(g.to_bits(), e.to_bits(), "{mode:?}");
                }
            }
            assert_eq!(mix.combined(), single);
        }
    }

    #[test]
    fn mix_evaluation_produces_per_tenant_metrics() {
        let mix = WorkloadMix::edge_mix();
        let metrics = evaluate_chip_mix(&chip(2, 2, 64), &mix).unwrap();
        assert_eq!(metrics.tenants.len(), 3);
        for tenant in &metrics.tenants {
            assert!(tenant.metrics.latency_ns > 0.0);
            assert!(tenant.metrics.throughput_tops > 0.0);
            assert!(tenant.metrics.energy_per_inference_pj > 0.0);
            assert!(tenant.metrics.accuracy_db.is_finite());
            // Co-scheduling can only extend a tenant's latency relative to
            // running alone on the same chip.
            let alone = evaluate_chip(&chip(2, 2, 64), &find_net(&mix, &tenant.name)).unwrap();
            assert!(
                tenant.metrics.latency_ns >= alone.latency_ns,
                "{}: {} < {}",
                tenant.name,
                tenant.metrics.latency_ns,
                alone.latency_ns
            );
        }
        // The makespan is at least every tenant's co-scheduled latency.
        for tenant in &metrics.tenants {
            assert!(metrics.makespan_ns >= tenant.metrics.latency_ns - 1e-9);
        }
        let combined = metrics.combined();
        assert_eq!(
            combined.layers.len(),
            metrics
                .tenants
                .iter()
                .map(|t| t.metrics.layers.len())
                .sum::<usize>()
        );
        assert!(combined.layers[0].name.contains('/'));
    }

    fn find_net(mix: &WorkloadMix, name: &str) -> Network {
        mix.tenants()
            .iter()
            .find(|t| t.name() == name)
            .unwrap()
            .network
            .clone()
    }

    #[test]
    fn mix_parallel_serial_and_batch_agree() {
        let mix = WorkloadMix::edge_mix();
        let chips = vec![chip(1, 1, 32), chip(2, 2, 64), chip(1, 2, 16)];
        let evaluator = ChipEvaluator::s28_default();
        let batch = evaluator.evaluate_mix_batch(&chips, &mix);
        for (c, result) in chips.iter().zip(batch) {
            let parallel = evaluator.evaluate_mix(c, &mix).unwrap();
            let serial = evaluator.evaluate_mix_serial(c, &mix).unwrap();
            assert_eq!(parallel, serial);
            assert_eq!(result.unwrap(), parallel);
        }
    }

    #[test]
    fn mix_derives_shared_macros_once() {
        let mix = WorkloadMix::edge_mix();
        let cache = crate::MacroMetricsCache::new();
        let reusing = ChipEvaluator::s28_default().with_macro_cache(cache.clone());
        reusing.evaluate_mix(&chip(2, 2, 64), &mix).unwrap();
        // Three tenants on one uniform grid: one lookup, one derivation —
        // the per-chip fold runs once for the whole mix.
        let stats = reusing.macro_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert_eq!(cache.len(), 1);
        // A second chip over the same macro hits.
        reusing.evaluate_mix(&chip(1, 2, 32), &mix).unwrap();
        assert_eq!(reusing.macro_cache_stats().hits, 1);
    }

    #[test]
    fn worst_tenant_and_weighted_mean_aggregate_differently() {
        let mix = WorkloadMix::new("skewed")
            .with_tenant(Network::edge_cnn(2), 10.0)
            .with_tenant(Network::transformer_block(), 0.1);
        let metrics = evaluate_chip_mix(&chip(2, 2, 64), &mix).unwrap();
        let worst = metrics.objectives(MixObjective::WorstTenant);
        let mean = metrics.objectives(MixObjective::WeightedMean);
        // Worst-tenant accuracy is at most (≥ in minimisation form) the
        // weighted mean, and the two modes genuinely differ on this mix.
        assert!(worst[0] >= mean[0]);
        assert_ne!(worst, mean);
        // Area is chip-global in both.
        assert_eq!(worst[3].to_bits(), mean[3].to_bits());
    }

    #[test]
    fn quantized_tenant_pays_cycles_and_slows_the_round() {
        let base = WorkloadMix::new("base")
            .with_tenant(Network::edge_cnn(1), 1.0)
            .with_tenant(Network::transformer_block(), 1.0);
        let quant = WorkloadMix::new("quant")
            .with_tenant(Network::edge_cnn(1), 1.0)
            .with_quantized_tenant(Network::transformer_block(), 1.0, 8);
        let c = chip(2, 2, 64);
        let b = evaluate_chip_mix(&c, &base).unwrap();
        let q = evaluate_chip_mix(&c, &quant).unwrap();
        assert!(q.makespan_ns > b.makespan_ns);
        // The quantized tenant's own energy grows with its issued cycles…
        assert!(
            q.tenants[1].metrics.energy_per_inference_pj
                > b.tenants[1].metrics.energy_per_inference_pj
        );
        // …and the co-scheduled CNN tenant's latency suffers too.
        assert!(q.tenants[0].metrics.latency_ns >= b.tenants[0].metrics.latency_ns);
    }

    #[test]
    fn invalid_mixes_are_rejected() {
        let evaluator = ChipEvaluator::s28_default();
        let c = chip(1, 1, 32);
        assert!(evaluator
            .evaluate_mix(&c, &WorkloadMix::new("empty"))
            .is_err());
        let dup = WorkloadMix::new("dup")
            .with_tenant(Network::edge_cnn(1), 1.0)
            .with_tenant(Network::edge_cnn(1), 1.0);
        assert!(evaluator.evaluate_mix(&c, &dup).is_err());
    }
}
