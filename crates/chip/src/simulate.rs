//! Behavioural multi-macro simulation: the validation path behind the
//! analytic chip evaluator.
//!
//! Lowers every network layer to a concrete [`BinaryMvm`], places its
//! tiles with the same partitioner the analytic model uses, then drives
//! one behavioural [`AcimMacro`] per grid position through the
//! program → MAC → convert sequence of `acim-workloads::mapping`,
//! accumulating de-quantised partial sums digitally.  The result carries
//! the *measured* end-to-end error of the whole network on the grid —
//! the ground truth the analytic accuracy proxy approximates.
//!
//! [`BinaryMvm`]: acim_workloads::quantize::BinaryMvm

use acim_arch::{AcimMacro, NoiseConfig};
use acim_tech::Technology;
use acim_workloads::run_output_tile;

use crate::error::ChipError;
use crate::evaluate::ChipSpec;
use crate::network::Network;
use crate::partition::partition_network;

/// Measured behaviour of one layer on the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSimReport {
    /// Layer name.
    pub name: String,
    /// Total MAC+conversion cycles across all macros.
    pub cycles: u64,
    /// Number of tiles the layer was split into.
    pub tiles: usize,
    /// Number of distinct macros used.
    pub macros_used: usize,
    /// Mean absolute error of the de-quantised outputs against the exact
    /// binary dot products, normalised like
    /// `acim_workloads::MappingReport::relative_error`.
    pub relative_error: f64,
    /// Measured macro energy in fJ.
    pub energy_fj: f64,
    /// Layer latency in ns (slowest macro's busy time).
    pub latency_ns: f64,
}

/// Measured behaviour of a whole network on a chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSimReport {
    /// Per-layer reports, in network order.
    pub layers: Vec<LayerSimReport>,
    /// Sum of layer latencies in ns.
    pub total_latency_ns: f64,
    /// Sum of measured macro energies in fJ.
    pub total_energy_fj: f64,
}

impl ChipSimReport {
    /// The worst per-layer relative error — the behavioural counterpart
    /// of the analytic accuracy proxy.
    pub fn max_relative_error(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.relative_error)
            .fold(0.0, f64::max)
    }
}

/// Runs every layer of `network` on `chip` behaviourally.
///
/// Deterministic per `seed`: layer workloads and each macro's noise stream
/// derive from it reproducibly.
///
/// # Errors
///
/// Returns [`ChipError`] when a layer cannot be lowered or a macro
/// simulation rejects its tiles.
pub fn simulate_network(
    chip: &ChipSpec,
    network: &Network,
    seed: u64,
) -> Result<ChipSimReport, ChipError> {
    let grid = &chip.grid;
    let tech = Technology::s28();
    let noise = NoiseConfig::realistic();
    let cycle_ns: Vec<f64> = grid
        .specs()
        .iter()
        .map(|spec| {
            acim_arch::TimingModel::s28_default()
                .cycle_time(spec.adc_bits())
                .value()
                / 1000.0
        })
        .collect();
    let partition = partition_network(grid, network, &cycle_ns)?;

    let mut layers = Vec::with_capacity(network.len());
    for placement in &partition.layers {
        let layer = &network.layers[placement.layer];
        let workload = layer.to_workload(seed ^ (placement.layer as u64 + 1))?;
        let ideal = workload.ideal_binary_outputs();
        let (outputs, dot_length) = placement.shape;

        let mut total_error = 0.0f64;
        let mut cycles = 0u64;
        let mut energy_fj = 0.0f64;
        let mut busy_ns = vec![0.0f64; grid.num_macros()];

        // Group tiles by macro so each macro is instantiated once and its
        // energy statistics accumulate over all its tiles.
        for macro_index in 0..grid.num_macros() {
            let tiles: Vec<_> = placement
                .tiles
                .iter()
                .filter(|t| t.macro_index == macro_index)
                .collect();
            if tiles.is_empty() {
                continue;
            }
            let spec = grid.spec(macro_index);
            let mut macro_sim = AcimMacro::new(
                spec,
                &tech,
                noise,
                seed ^ ((placement.layer as u64) << 16) ^ (macro_index as u64 + 1),
            )?;

            for tile in &tiles {
                let (accumulated, tile_cycles) =
                    run_output_tile(&mut macro_sim, spec, &workload, tile.row_base, tile.rows)?;
                cycles += tile_cycles;
                busy_ns[macro_index] += tile_cycles as f64 * cycle_ns[macro_index];
                for (c, acc) in accumulated.iter().enumerate() {
                    let exact = f64::from(ideal[tile.row_base + c]);
                    total_error += (acc - exact).abs();
                }
            }
            energy_fj += macro_sim.stats().energy.total().value();
        }

        layers.push(LayerSimReport {
            name: layer.name.clone(),
            cycles,
            tiles: placement.tiles.len(),
            macros_used: placement.macros_used(),
            relative_error: total_error / outputs as f64 / dot_length as f64,
            energy_fj,
            latency_ns: busy_ns.iter().copied().fold(0.0, f64::max),
        });
    }

    Ok(ChipSimReport {
        total_latency_ns: layers.iter().map(|l| l.latency_ns).sum(),
        total_energy_fj: layers.iter().map(|l| l.energy_fj).sum(),
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::MacroGrid;
    use acim_arch::AcimSpec;
    use acim_workloads::MacroMapper;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    fn chip(rows: usize, cols: usize) -> ChipSpec {
        ChipSpec::new(
            MacroGrid::uniform(rows, cols, spec(64, 16, 4, 4)).unwrap(),
            64,
        )
        .unwrap()
    }

    #[test]
    fn network_simulation_reports_small_error() {
        let report = simulate_network(&chip(2, 2), &Network::edge_cnn(1), 11).unwrap();
        assert_eq!(report.layers.len(), 3);
        for layer in &report.layers {
            assert!(layer.cycles > 0);
            assert!(layer.energy_fj > 0.0);
            assert!(layer.latency_ns > 0.0);
            assert!(
                layer.relative_error < 0.2,
                "{}: error {}",
                layer.name,
                layer.relative_error
            );
        }
        assert!(report.total_latency_ns > 0.0);
        assert!(report.max_relative_error() < 0.2);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let a = simulate_network(&chip(2, 2), &Network::transformer_block(), 3).unwrap();
        let b = simulate_network(&chip(2, 2), &Network::transformer_block(), 3).unwrap();
        let c = simulate_network(&chip(2, 2), &Network::transformer_block(), 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_macro_chip_matches_macro_mapper_cycle_count() {
        // On a 1×1 grid the chip partitioner degenerates to MacroMapper's
        // tiling, so total cycles must agree exactly.
        let network = Network::edge_cnn(1);
        let report = simulate_network(&chip(1, 1), &network, 5).unwrap();
        for (layer, sim) in network.layers.iter().zip(&report.layers) {
            // Cycle counts depend only on the layer shape, not the seed.
            let workload = layer.to_workload(9).unwrap();
            let mapper_report = MacroMapper::new(&spec(64, 16, 4, 4))
                .unwrap()
                .run(&workload, 7)
                .unwrap();
            assert_eq!(sim.cycles, mapper_report.cycles, "layer {}", layer.name);
        }
    }

    #[test]
    fn more_macros_reduce_layer_latency() {
        let network = Network::new("wide", vec![Network::edge_cnn(1).layers[1].clone()]);
        let one = simulate_network(&chip(1, 1), &network, 2).unwrap();
        let four = simulate_network(&chip(2, 2), &network, 2).unwrap();
        assert!(four.layers[0].macros_used > 1);
        assert!(four.total_latency_ns < one.total_latency_ns);
    }
}
