//! Behavioural multi-macro simulation: the validation path behind the
//! analytic chip evaluator.
//!
//! Lowers every network layer to a concrete [`BinaryMvm`], places its
//! tiles with the same partitioner the analytic model uses, then drives
//! one behavioural [`AcimMacro`] per grid position through the
//! program → MAC → convert sequence of `acim-workloads::mapping`,
//! accumulating de-quantised partial sums digitally.  The result carries
//! the *measured* end-to-end error of the whole network on the grid —
//! the ground truth the analytic accuracy proxy approximates.
//!
//! [`BinaryMvm`]: acim_workloads::quantize::BinaryMvm

use acim_arch::{AcimMacro, NoiseConfig};
use acim_tech::Technology;
use acim_workloads::run_output_tile;

use crate::error::ChipError;
use crate::evaluate::ChipSpec;
use crate::network::{Network, WorkloadMix};
use crate::partition::{partition_mix, partition_network};

/// Measured behaviour of one layer on the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSimReport {
    /// Layer name.
    pub name: String,
    /// Total MAC+conversion cycles across all macros.
    pub cycles: u64,
    /// Number of tiles the layer was split into.
    pub tiles: usize,
    /// Number of distinct macros used.
    pub macros_used: usize,
    /// Mean absolute error of the de-quantised outputs against the exact
    /// binary dot products, normalised like
    /// `acim_workloads::MappingReport::relative_error`.
    pub relative_error: f64,
    /// Measured macro energy in fJ.
    pub energy_fj: f64,
    /// Layer latency in ns (slowest macro's busy time).
    pub latency_ns: f64,
}

/// Measured behaviour of a whole network on a chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSimReport {
    /// Per-layer reports, in network order.
    pub layers: Vec<LayerSimReport>,
    /// Sum of layer latencies in ns.
    pub total_latency_ns: f64,
    /// Sum of measured macro energies in fJ.
    pub total_energy_fj: f64,
}

impl ChipSimReport {
    /// The worst per-layer relative error — the behavioural counterpart
    /// of the analytic accuracy proxy.
    pub fn max_relative_error(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.relative_error)
            .fold(0.0, f64::max)
    }
}

/// Runs every layer of `network` on `chip` behaviourally.
///
/// Deterministic per `seed`: layer workloads and each macro's noise stream
/// derive from it reproducibly.
///
/// # Errors
///
/// Returns [`ChipError`] when a layer cannot be lowered or a macro
/// simulation rejects its tiles.
pub fn simulate_network(
    chip: &ChipSpec,
    network: &Network,
    seed: u64,
) -> Result<ChipSimReport, ChipError> {
    let grid = &chip.grid;
    let tech = Technology::s28();
    let noise = NoiseConfig::realistic();
    let cycle_ns: Vec<f64> = grid
        .specs()
        .iter()
        .map(|spec| {
            acim_arch::TimingModel::s28_default()
                .cycle_time(spec.adc_bits())
                .value()
                / 1000.0
        })
        .collect();
    let partition = partition_network(grid, network, &cycle_ns)?;

    let mut layers = Vec::with_capacity(network.len());
    for placement in &partition.layers {
        let layer = &network.layers[placement.layer];
        let workload = layer.to_workload(seed ^ (placement.layer as u64 + 1))?;
        let ideal = workload.ideal_binary_outputs();
        let (outputs, dot_length) = placement.shape;

        let mut total_error = 0.0f64;
        let mut cycles = 0u64;
        let mut energy_fj = 0.0f64;
        let mut busy_ns = vec![0.0f64; grid.num_macros()];

        // Group tiles by macro so each macro is instantiated once and its
        // energy statistics accumulate over all its tiles.
        for macro_index in 0..grid.num_macros() {
            let tiles: Vec<_> = placement
                .tiles
                .iter()
                .filter(|t| t.macro_index == macro_index)
                .collect();
            if tiles.is_empty() {
                continue;
            }
            let spec = grid.spec(macro_index);
            let mut macro_sim = AcimMacro::new(
                spec,
                &tech,
                noise,
                seed ^ ((placement.layer as u64) << 16) ^ (macro_index as u64 + 1),
            )?;

            for tile in &tiles {
                let (accumulated, tile_cycles) =
                    run_output_tile(&mut macro_sim, spec, &workload, tile.row_base, tile.rows)?;
                cycles += tile_cycles;
                busy_ns[macro_index] += tile_cycles as f64 * cycle_ns[macro_index];
                for (c, acc) in accumulated.iter().enumerate() {
                    let exact = f64::from(ideal[tile.row_base + c]);
                    total_error += (acc - exact).abs();
                }
            }
            energy_fj += macro_sim.stats().energy.total().value();
        }

        layers.push(LayerSimReport {
            name: layer.name.clone(),
            cycles,
            tiles: placement.tiles.len(),
            macros_used: placement.macros_used(),
            relative_error: total_error / outputs as f64 / dot_length as f64,
            energy_fj,
            latency_ns: busy_ns.iter().copied().fold(0.0, f64::max),
        });
    }

    Ok(ChipSimReport {
        total_latency_ns: layers.iter().map(|l| l.latency_ns).sum(),
        total_energy_fj: layers.iter().map(|l| l.energy_fj).sum(),
        layers,
    })
}

/// Measured behaviour of one tenant of a co-scheduled mix.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSimReport {
    /// Tenant name (its network's name).
    pub name: String,
    /// The tenant's own rollup.  Layer `latency_ns` is the latency of the
    /// layer's *round* (the shared finish time of every co-scheduled
    /// layer), so `total_latency_ns` covers the rounds this tenant
    /// participates in.
    pub report: ChipSimReport,
}

/// Measured behaviour of a whole [`WorkloadMix`] on a chip.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSimReport {
    /// Per-tenant reports, in mix order.
    pub tenants: Vec<TenantSimReport>,
    /// Total MAC+conversion cycles across all tenants (exact integer sum,
    /// so it always equals the sum of the tenants' own totals).
    pub total_cycles: u64,
    /// End-to-end makespan of the co-scheduled mix in ns: the sum of all
    /// round latencies.
    pub makespan_ns: f64,
    /// Sum of measured macro energies in fJ.  Accumulated in
    /// tenant-*name* order internally, so it is exactly invariant under
    /// tenant reordering (unlike latencies, which depend on placement).
    pub total_energy_fj: f64,
}

impl MixSimReport {
    /// The worst relative error over every tenant's layers.
    pub fn max_relative_error(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.report.max_relative_error())
            .fold(0.0, f64::max)
    }
}

/// FNV-1a hash of a tenant name, mixed into the seed so each tenant's
/// workloads and noise streams are independent of its position in the mix.
fn tenant_seed(seed: u64, name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^ hash
}

/// One measured layer before round rollup: its own totals plus the
/// per-tile (macro, cycles) schedule the round latencies are built from.
struct MeasuredLayer {
    name: String,
    cycles: u64,
    tiles: usize,
    macros_used: usize,
    relative_error: f64,
    energy_fj: f64,
    tile_macro_cycles: Vec<(usize, u64)>,
}

/// Runs a whole co-scheduled [`WorkloadMix`] on `chip` behaviourally.
///
/// Each tenant's layers lower to concrete workloads seeded by
/// `(seed, tenant name, layer)`, and every *tile* drives its own
/// behavioural macro instance seeded by `(seed, tenant name, layer, tile)`
/// — deliberately independent of which grid macro the tile lands on.  On a
/// uniform grid this makes every per-tenant measurement except latency
/// (cycles, energy, relative error) exactly invariant under tenant
/// reordering, because reordering only moves tiles between identical
/// macros.  Latencies *do* depend on placement: round latency is the
/// slowest macro of the round's combined schedule.
///
/// A tenant quantised to `q` activation bits replays the same binary
/// schedule once per bit-plane: its measured cycles and energy scale by
/// `q`, matching the analytic partitioner's cycle accounting.
///
/// [`simulate_network`] is unchanged by mix support (its per-macro
/// grouping and historical seeding are kept so existing validation runs
/// reproduce bit for bit); it remains the validation path for single
/// networks.
///
/// # Errors
///
/// Returns [`ChipError`] when the mix fails [`WorkloadMix::validate`], a
/// layer cannot be lowered, or a macro simulation rejects its tiles.
pub fn simulate_mix(
    chip: &ChipSpec,
    mix: &WorkloadMix,
    seed: u64,
) -> Result<MixSimReport, ChipError> {
    let grid = &chip.grid;
    let tech = Technology::s28();
    let noise = NoiseConfig::realistic();
    let cycle_ns: Vec<f64> = grid
        .specs()
        .iter()
        .map(|spec| {
            acim_arch::TimingModel::s28_default()
                .cycle_time(spec.adc_bits())
                .value()
                / 1000.0
        })
        .collect();
    let partition = partition_mix(grid, mix, &cycle_ns)?;

    // Measure every tenant's layers first; round latencies are assembled
    // afterwards from the recorded per-tile schedules.
    let mut measured: Vec<Vec<MeasuredLayer>> = Vec::with_capacity(mix.len());
    for (tenant_index, tenant) in mix.tenants().iter().enumerate() {
        let tseed = tenant_seed(seed, tenant.name());
        let bits = u64::from(tenant.quant.activation_bits);
        let mut layers = Vec::with_capacity(tenant.network.len());
        for placement in &partition.streams[tenant_index].layers {
            let layer = &tenant.network.layers[placement.layer];
            let workload = layer.to_workload(tseed ^ (placement.layer as u64 + 1))?;
            let ideal = workload.ideal_binary_outputs();
            let (outputs, dot_length) = placement.shape;

            let mut total_error = 0.0f64;
            let mut cycles = 0u64;
            let mut energy_fj = 0.0f64;
            let mut tile_macro_cycles = Vec::with_capacity(placement.tiles.len());
            for (tile_index, tile) in placement.tiles.iter().enumerate() {
                let spec = grid.spec(tile.macro_index);
                let mut macro_sim = AcimMacro::new(
                    spec,
                    &tech,
                    noise,
                    tseed ^ ((placement.layer as u64) << 16) ^ (tile_index as u64 + 1),
                )?;
                let (accumulated, tile_cycles) =
                    run_output_tile(&mut macro_sim, spec, &workload, tile.row_base, tile.rows)?;
                cycles += tile_cycles * bits;
                tile_macro_cycles.push((tile.macro_index, tile_cycles * bits));
                for (c, acc) in accumulated.iter().enumerate() {
                    let exact = f64::from(ideal[tile.row_base + c]);
                    total_error += (acc - exact).abs();
                }
                energy_fj += macro_sim.stats().energy.total().value() * bits as f64;
            }

            layers.push(MeasuredLayer {
                name: layer.name.clone(),
                cycles,
                tiles: placement.tiles.len(),
                macros_used: placement.macros_used(),
                relative_error: total_error / outputs as f64 / dot_length as f64,
                energy_fj,
                tile_macro_cycles,
            });
        }
        measured.push(layers);
    }

    // Round latencies: the slowest macro of each round's combined
    // measured schedule, mirroring the analytic evaluator's barriers.
    let mut round_latency = vec![0.0f64; partition.rounds.len()];
    for round in &partition.rounds {
        let mut busy = vec![0.0f64; grid.num_macros()];
        for &tenant_index in &round.members {
            for &(macro_index, tile_cycles) in
                &measured[tenant_index][round.round].tile_macro_cycles
            {
                busy[macro_index] += tile_cycles as f64 * cycle_ns[macro_index];
            }
        }
        round_latency[round.round] = busy.iter().copied().fold(0.0, f64::max);
    }
    let makespan_ns: f64 = round_latency.iter().sum();

    let tenants: Vec<TenantSimReport> = mix
        .tenants()
        .iter()
        .zip(measured)
        .map(|(tenant, layers)| {
            let layers: Vec<LayerSimReport> = layers
                .into_iter()
                .enumerate()
                .map(|(round, m)| LayerSimReport {
                    name: m.name,
                    cycles: m.cycles,
                    tiles: m.tiles,
                    macros_used: m.macros_used,
                    relative_error: m.relative_error,
                    energy_fj: m.energy_fj,
                    latency_ns: round_latency[round],
                })
                .collect();
            TenantSimReport {
                name: tenant.name().to_string(),
                report: ChipSimReport {
                    total_latency_ns: layers.iter().map(|l| l.latency_ns).sum(),
                    total_energy_fj: layers.iter().map(|l| l.energy_fj).sum(),
                    layers,
                },
            }
        })
        .collect();

    let total_cycles = tenants
        .iter()
        .flat_map(|t| t.report.layers.iter())
        .map(|l| l.cycles)
        .sum();
    // Name-sorted accumulation keeps the aggregate energy bit-invariant
    // under tenant reordering.
    let mut by_name: Vec<&TenantSimReport> = tenants.iter().collect();
    by_name.sort_by(|a, b| a.name.cmp(&b.name));
    let total_energy_fj = by_name.iter().map(|t| t.report.total_energy_fj).sum();

    Ok(MixSimReport {
        tenants,
        total_cycles,
        makespan_ns,
        total_energy_fj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::MacroGrid;
    use acim_arch::AcimSpec;
    use acim_workloads::MacroMapper;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    fn chip(rows: usize, cols: usize) -> ChipSpec {
        ChipSpec::new(
            MacroGrid::uniform(rows, cols, spec(64, 16, 4, 4)).unwrap(),
            64,
        )
        .unwrap()
    }

    #[test]
    fn network_simulation_reports_small_error() {
        let report = simulate_network(&chip(2, 2), &Network::edge_cnn(1), 11).unwrap();
        assert_eq!(report.layers.len(), 3);
        for layer in &report.layers {
            assert!(layer.cycles > 0);
            assert!(layer.energy_fj > 0.0);
            assert!(layer.latency_ns > 0.0);
            assert!(
                layer.relative_error < 0.2,
                "{}: error {}",
                layer.name,
                layer.relative_error
            );
        }
        assert!(report.total_latency_ns > 0.0);
        assert!(report.max_relative_error() < 0.2);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let a = simulate_network(&chip(2, 2), &Network::transformer_block(), 3).unwrap();
        let b = simulate_network(&chip(2, 2), &Network::transformer_block(), 3).unwrap();
        let c = simulate_network(&chip(2, 2), &Network::transformer_block(), 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_macro_chip_matches_macro_mapper_cycle_count() {
        // On a 1×1 grid the chip partitioner degenerates to MacroMapper's
        // tiling, so total cycles must agree exactly.
        let network = Network::edge_cnn(1);
        let report = simulate_network(&chip(1, 1), &network, 5).unwrap();
        for (layer, sim) in network.layers.iter().zip(&report.layers) {
            // Cycle counts depend only on the layer shape, not the seed.
            let workload = layer.to_workload(9).unwrap();
            let mapper_report = MacroMapper::new(&spec(64, 16, 4, 4))
                .unwrap()
                .run(&workload, 7)
                .unwrap();
            assert_eq!(sim.cycles, mapper_report.cycles, "layer {}", layer.name);
        }
    }

    #[test]
    fn more_macros_reduce_layer_latency() {
        let network = Network::new("wide", vec![Network::edge_cnn(1).layers[1].clone()]);
        let one = simulate_network(&chip(1, 1), &network, 2).unwrap();
        let four = simulate_network(&chip(2, 2), &network, 2).unwrap();
        assert!(four.layers[0].macros_used > 1);
        assert!(four.total_latency_ns < one.total_latency_ns);
    }

    #[test]
    fn mix_simulation_reports_per_tenant_behaviour() {
        let mix = WorkloadMix::new("duo")
            .with_tenant(Network::edge_cnn(1), 2.0)
            .with_tenant(Network::snn_pipeline(), 1.0);
        let report = simulate_mix(&chip(2, 2), &mix, 11).unwrap();
        assert_eq!(report.tenants.len(), 2);
        let per_tenant_cycles: u64 = report
            .tenants
            .iter()
            .flat_map(|t| t.report.layers.iter())
            .map(|l| l.cycles)
            .sum();
        assert_eq!(report.total_cycles, per_tenant_cycles);
        assert!(report.total_cycles > 0);
        assert!(report.makespan_ns > 0.0);
        assert!(report.total_energy_fj > 0.0);
        assert!(report.max_relative_error() < 0.2);
        for tenant in &report.tenants {
            assert!(tenant.report.total_latency_ns <= report.makespan_ns + 1e-9);
            for layer in &tenant.report.layers {
                assert!(layer.cycles > 0);
                assert!(layer.energy_fj > 0.0);
                assert!(layer.latency_ns > 0.0);
            }
        }
    }

    #[test]
    fn mix_simulation_is_deterministic_per_seed() {
        let mix = WorkloadMix::edge_mix();
        let a = simulate_mix(&chip(2, 2), &mix, 3).unwrap();
        let b = simulate_mix(&chip(2, 2), &mix, 3).unwrap();
        let c = simulate_mix(&chip(2, 2), &mix, 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tenant_order_does_not_change_measurements_on_uniform_grids() {
        let forward = WorkloadMix::new("fwd")
            .with_tenant(Network::edge_cnn(1), 1.0)
            .with_tenant(Network::transformer_block(), 1.0);
        let reversed = WorkloadMix::new("rev")
            .with_tenant(Network::transformer_block(), 1.0)
            .with_tenant(Network::edge_cnn(1), 1.0);
        let f = simulate_mix(&chip(2, 2), &forward, 17).unwrap();
        let r = simulate_mix(&chip(2, 2), &reversed, 17).unwrap();
        assert_eq!(f.total_cycles, r.total_cycles);
        assert_eq!(f.total_energy_fj.to_bits(), r.total_energy_fj.to_bits());
        for tenant in &f.tenants {
            let twin = r.tenants.iter().find(|t| t.name == tenant.name).unwrap();
            assert_eq!(
                tenant.report.total_energy_fj.to_bits(),
                twin.report.total_energy_fj.to_bits(),
                "{}",
                tenant.name
            );
            for (a, b) in tenant.report.layers.iter().zip(&twin.report.layers) {
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.relative_error.to_bits(), b.relative_error.to_bits());
            }
        }
    }

    #[test]
    fn quantized_tenant_replays_bit_planes() {
        let binary = WorkloadMix::new("b").with_tenant(Network::snn_pipeline(), 1.0);
        let quant = WorkloadMix::new("q").with_quantized_tenant(Network::snn_pipeline(), 1.0, 4);
        let b = simulate_mix(&chip(2, 2), &binary, 9).unwrap();
        let q = simulate_mix(&chip(2, 2), &quant, 9).unwrap();
        assert_eq!(q.total_cycles, 4 * b.total_cycles);
        assert!(q.makespan_ns > b.makespan_ns);
    }
}
