//! Error type of the chip crate.

use std::error::Error;
use std::fmt;

use acim_arch::ArchError;
use acim_model::ModelError;
use acim_workloads::WorkloadError;

/// Errors produced while composing or evaluating a chip.
#[derive(Debug, Clone, PartialEq)]
pub enum ChipError {
    /// A chip-level parameter was invalid.
    InvalidConfig {
        /// Parameter name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An error bubbled up from the architecture crate.
    Arch(ArchError),
    /// An error bubbled up from the estimation model.
    Model(ModelError),
    /// An error bubbled up from the workloads crate.
    Workload(WorkloadError),
}

impl ChipError {
    /// Convenience constructor for configuration errors.
    pub fn invalid_config(name: impl Into<String>, reason: impl Into<String>) -> Self {
        ChipError::InvalidConfig {
            name: name.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::InvalidConfig { name, reason } => {
                write!(f, "invalid chip parameter `{name}`: {reason}")
            }
            ChipError::Arch(err) => write!(f, "architecture error: {err}"),
            ChipError::Model(err) => write!(f, "estimation-model error: {err}"),
            ChipError::Workload(err) => write!(f, "workload error: {err}"),
        }
    }
}

impl Error for ChipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChipError::Arch(err) => Some(err),
            ChipError::Model(err) => Some(err),
            ChipError::Workload(err) => Some(err),
            ChipError::InvalidConfig { .. } => None,
        }
    }
}

impl From<ArchError> for ChipError {
    fn from(err: ArchError) -> Self {
        ChipError::Arch(err)
    }
}

impl From<ModelError> for ChipError {
    fn from(err: ModelError) -> Self {
        ChipError::Model(err)
    }
}

impl From<WorkloadError> for ChipError {
    fn from(err: WorkloadError) -> Self {
        ChipError::Workload(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = ChipError::invalid_config("grid", "must be non-empty");
        assert!(e.to_string().contains("grid"));
        let e: ChipError = ArchError::invalid_spec("x", "y").into();
        assert!(e.to_string().contains("architecture error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChipError>();
    }
}
