//! # acim-chip
//!
//! Chip-level multi-macro accelerator model for the EasyACIM
//! reproduction.
//!
//! The paper's flow produces *one* distilled ACIM macro, but the
//! applications that motivate it (Figure 1's transformers, CNNs and SNNs)
//! never fit a single array.  This crate composes distilled macros into a
//! full accelerator and turns per-macro figures of merit into end-to-end
//! network objectives:
//!
//! * [`grid`] — a mesh of (possibly heterogeneous) macro instances,
//! * [`network`] — whole-network workloads and multi-tenant
//!   [`WorkloadMix`]es (re-exported from `acim-workloads`),
//! * [`partition`] — deterministic least-finish-time tiling of every
//!   layer across the grid, co-scheduling the streams of a mix round by
//!   round (the multi-macro generalisation of `acim-workloads::mapping`),
//! * [`interconnect`] — mesh, global-buffer and digital-accumulation cost
//!   parameters,
//! * [`evaluate`] — the analytic chip evaluator: throughput, energy per
//!   inference, area and an accuracy proxy, with rayon-parallel (and
//!   bit-deterministic) layer evaluation,
//! * [`metrics_cache`] — the macro-metric reuse layer: a shared, bounded,
//!   poison-tolerant cache of per-macro `DesignMetrics` the evaluator
//!   consults instead of re-deriving the same macros chip after chip,
//! * [`simulate`] — the behavioural validation path, driving one
//!   `acim_arch::AcimMacro` per grid position.
//!
//! `acim-dse` builds a `ChipDesignProblem` on top of this crate so NSGA-II
//! can co-explore macro shape × macro count × buffer sizing, and
//! `easyacim` exposes it as a `ChipFlow` stage.
//!
//! # Example
//!
//! ```
//! use acim_arch::AcimSpec;
//! use acim_chip::{evaluate_chip, ChipSpec, MacroGrid, Network};
//!
//! # fn main() -> Result<(), acim_chip::ChipError> {
//! let spec = AcimSpec::from_dimensions(128, 32, 4, 4)?;
//! let chip = ChipSpec::new(MacroGrid::uniform(2, 2, spec)?, 64)?;
//! let metrics = evaluate_chip(&chip, &Network::edge_cnn(2))?;
//! assert!(metrics.throughput_tops > 0.0);
//! assert!(metrics.layers.len() == 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod evaluate;
pub mod grid;
pub mod interconnect;
pub mod metrics_cache;
pub mod network;
pub mod partition;
pub mod simulate;

pub use error::ChipError;
pub use evaluate::{
    evaluate_chip, evaluate_chip_mix, ChipEvaluator, ChipMetrics, ChipSpec, LayerCost, MixMetrics,
    MixObjective, TenantMetrics,
};
pub use grid::MacroGrid;
pub use interconnect::{AccumulatorParams, BufferParams, ChipCostParams, InterconnectParams};
pub use metrics_cache::{MacroCacheClient, MacroMetrics, MacroMetricsCache};
pub use network::{LayerKind, Network, NetworkLayer, Tenant, TenantQuant, WorkloadMix};
pub use partition::{
    partition_mix, partition_network, partition_streams, LayerPartition, MixPartition, Partition,
    RoundPartition, StreamSpec, TileAssignment,
};
pub use simulate::{
    simulate_mix, simulate_network, ChipSimReport, LayerSimReport, MixSimReport, TenantSimReport,
};
