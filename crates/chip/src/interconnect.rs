//! Chip-level cost parameters: mesh interconnect, global buffer, and
//! digital accumulation.
//!
//! The macro-level model of `acim-model` stops at the array boundary.  At
//! chip level three more costs dominate the off-macro picture:
//!
//! * **interconnect** — moving activation/weight/result bits over the mesh
//!   between the global buffer and the macros (energy per bit per hop,
//!   latency per hop),
//! * **global buffer** — an SRAM holding the current layer's weights and
//!   activations (read/write energy per bit, finite bandwidth, area), and
//! * **digital accumulation** — the adder tree that folds the per-chunk
//!   ADC codes into full dot products.
//!
//! Defaults are derived from the same 28 nm operating point as
//! `ModelParams::s28_default`; all energies are in femtojoules so they
//! compose directly with the macro energy model.

use crate::error::ChipError;

/// Mesh-interconnect cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectParams {
    /// Energy to move one bit across one mesh hop, in fJ.
    pub hop_energy_fj_per_bit: f64,
    /// Latency of one mesh hop in ns (store-and-forward per flit batch).
    pub hop_latency_ns: f64,
    /// Link width in bits (one flit).
    pub link_width_bits: usize,
    /// Router area per mesh node in F².
    pub router_area_f2: f64,
}

/// Global-buffer (SRAM) cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferParams {
    /// Read energy per bit in fJ.
    pub read_energy_fj_per_bit: f64,
    /// Write energy per bit in fJ.
    pub write_energy_fj_per_bit: f64,
    /// Sustained bandwidth in bits per ns.
    pub bandwidth_bits_per_ns: f64,
    /// Area per bit of buffer capacity in F².
    pub area_f2_per_bit: f64,
    /// Static leakage power in fJ per ns (i.e. µW-scale leakage) per KiB.
    pub leakage_fj_per_ns_per_kib: f64,
}

/// Digital-accumulation cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccumulatorParams {
    /// Energy of one partial-sum add in fJ.
    pub add_energy_fj: f64,
    /// Adder-tree area per macro column in F².
    pub adder_area_f2_per_column: f64,
    /// SNR penalty applied per doubling of accumulated chunks, in dB —
    /// models the requantisation loss of folding many low-precision
    /// partial sums (0 disables the penalty).
    pub requant_penalty_db_per_doubling: f64,
}

/// All chip-level cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipCostParams {
    /// Mesh interconnect.
    pub interconnect: InterconnectParams,
    /// Global buffer.
    pub buffer: BufferParams,
    /// Digital accumulation.
    pub accumulator: AccumulatorParams,
}

impl ChipCostParams {
    /// Default chip-cost parameters at the 28 nm operating point.
    pub fn s28_default() -> Self {
        Self {
            interconnect: InterconnectParams {
                hop_energy_fj_per_bit: 0.8,
                hop_latency_ns: 0.5,
                link_width_bits: 64,
                router_area_f2: 1.2e6,
            },
            buffer: BufferParams {
                read_energy_fj_per_bit: 0.6,
                write_energy_fj_per_bit: 0.8,
                bandwidth_bits_per_ns: 256.0,
                area_f2_per_bit: 140.0,
                leakage_fj_per_ns_per_kib: 0.02,
            },
            accumulator: AccumulatorParams {
                add_energy_fj: 3.0,
                adder_area_f2_per_column: 9.0e3,
                requant_penalty_db_per_doubling: 0.75,
            },
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidConfig`] when any cost is negative or a
    /// required rate is not positive.
    pub fn validate(&self) -> Result<(), ChipError> {
        let nonnegative = [
            (
                "hop_energy_fj_per_bit",
                self.interconnect.hop_energy_fj_per_bit,
            ),
            ("hop_latency_ns", self.interconnect.hop_latency_ns),
            ("router_area_f2", self.interconnect.router_area_f2),
            ("read_energy_fj_per_bit", self.buffer.read_energy_fj_per_bit),
            (
                "write_energy_fj_per_bit",
                self.buffer.write_energy_fj_per_bit,
            ),
            ("area_f2_per_bit", self.buffer.area_f2_per_bit),
            (
                "leakage_fj_per_ns_per_kib",
                self.buffer.leakage_fj_per_ns_per_kib,
            ),
            ("add_energy_fj", self.accumulator.add_energy_fj),
            (
                "adder_area_f2_per_column",
                self.accumulator.adder_area_f2_per_column,
            ),
            (
                "requant_penalty_db_per_doubling",
                self.accumulator.requant_penalty_db_per_doubling,
            ),
        ];
        for (name, value) in nonnegative {
            if !value.is_finite() || value < 0.0 {
                return Err(ChipError::invalid_config(
                    name,
                    format!("{value} must be >= 0"),
                ));
            }
        }
        if self.buffer.bandwidth_bits_per_ns <= 0.0
            || !self.buffer.bandwidth_bits_per_ns.is_finite()
        {
            return Err(ChipError::invalid_config(
                "bandwidth_bits_per_ns",
                "bandwidth must be positive",
            ));
        }
        if self.interconnect.link_width_bits == 0 {
            return Err(ChipError::invalid_config(
                "link_width_bits",
                "link width must be positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ChipCostParams::s28_default().validate().is_ok());
    }

    #[test]
    fn negative_or_zero_parameters_rejected() {
        let mut params = ChipCostParams::s28_default();
        params.interconnect.hop_energy_fj_per_bit = -1.0;
        assert!(params.validate().is_err());

        let mut params = ChipCostParams::s28_default();
        params.buffer.bandwidth_bits_per_ns = 0.0;
        assert!(params.validate().is_err());

        let mut params = ChipCostParams::s28_default();
        params.interconnect.link_width_bits = 0;
        assert!(params.validate().is_err());

        let mut params = ChipCostParams::s28_default();
        params.accumulator.add_energy_fj = f64::NAN;
        assert!(params.validate().is_err());
    }
}
