//! The chip's macro grid: a 2-D mesh of (possibly heterogeneous) ACIM
//! macros.
//!
//! A single macro rarely fits a whole network, so the chip instantiates
//! `rows × cols` macros behind a shared global buffer and a mesh
//! interconnect.  The grid may be heterogeneous — e.g. a few high-SNR
//! macros for accuracy-critical attention layers next to long-local-array
//! macros for energy-tolerant SNN layers — which is exactly the
//! macro-diversity the paper's agile DSE makes cheap to obtain.

use std::fmt;

use acim_arch::AcimSpec;

use crate::error::ChipError;

/// A validated `rows × cols` grid of macro specifications, stored
/// row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroGrid {
    rows: usize,
    cols: usize,
    specs: Vec<AcimSpec>,
}

impl MacroGrid {
    /// Creates a homogeneous grid: every position holds the same macro.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidConfig`] when the grid is empty.
    pub fn uniform(rows: usize, cols: usize, spec: AcimSpec) -> Result<Self, ChipError> {
        Self::from_specs(rows, cols, vec![spec; rows * cols])
    }

    /// Creates a (possibly heterogeneous) grid from row-major macro specs.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidConfig`] when the grid is empty or the
    /// spec count does not match `rows · cols`.
    pub fn from_specs(rows: usize, cols: usize, specs: Vec<AcimSpec>) -> Result<Self, ChipError> {
        if rows == 0 || cols == 0 {
            return Err(ChipError::invalid_config(
                "grid",
                format!("grid must be non-empty, got {rows}x{cols}"),
            ));
        }
        if specs.len() != rows * cols {
            return Err(ChipError::invalid_config(
                "grid",
                format!(
                    "{rows}x{cols} grid needs {} specs, got {}",
                    rows * cols,
                    specs.len()
                ),
            ));
        }
        Ok(Self { rows, cols, specs })
    }

    /// Grid height in macros.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width in macros.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of macro instances.
    pub fn num_macros(&self) -> usize {
        self.specs.len()
    }

    /// The macro specification at a flat index (row-major).
    ///
    /// # Panics
    ///
    /// Panics when `index >= num_macros()`.
    pub fn spec(&self, index: usize) -> &AcimSpec {
        &self.specs[index]
    }

    /// All macro specifications, row-major.
    pub fn specs(&self) -> &[AcimSpec] {
        &self.specs
    }

    /// The (row, col) mesh coordinate of a flat macro index.
    pub fn coordinate(&self, index: usize) -> (usize, usize) {
        (index / self.cols, index % self.cols)
    }

    /// Manhattan hop distance from the global buffer (placed at the mesh
    /// origin, north-west corner) to a macro.
    pub fn hops_from_buffer(&self, index: usize) -> usize {
        let (r, c) = self.coordinate(index);
        r + c
    }

    /// Mean Manhattan hop distance from the buffer across all macros — the
    /// expected NoC distance of uniformly spread traffic.
    pub fn mean_hops(&self) -> f64 {
        let total: usize = (0..self.num_macros())
            .map(|i| self.hops_from_buffer(i))
            .sum();
        total as f64 / self.num_macros() as f64
    }

    /// Total bit-cell capacity of the grid (sum of macro array sizes).
    pub fn total_cells(&self) -> usize {
        self.specs.iter().map(AcimSpec::array_size).sum()
    }

    /// Peak 1-bit MACs per conversion cycle across the whole grid.
    pub fn peak_macs_per_cycle(&self) -> usize {
        self.specs.iter().map(AcimSpec::macs_per_cycle).sum()
    }

    /// Returns `true` when every macro has the same specification.
    pub fn is_uniform(&self) -> bool {
        self.specs.windows(2).all(|w| w[0] == w[1])
    }

    /// The distinct macro specifications of the grid, in first-appearance
    /// order (a uniform grid has exactly one).
    pub fn distinct_specs(&self) -> Vec<&AcimSpec> {
        let mut distinct: Vec<&AcimSpec> = Vec::new();
        for spec in &self.specs {
            if !distinct.contains(&spec) {
                distinct.push(spec);
            }
        }
        distinct
    }
}

impl fmt::Display for MacroGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_uniform() {
            write!(f, "{}x{} x {}", self.rows, self.cols, self.specs[0])
        } else {
            write!(f, "{}x{} heterogeneous grid", self.rows, self.cols)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    #[test]
    fn uniform_grid_shape_and_totals() {
        let grid = MacroGrid::uniform(2, 3, spec(128, 128, 8, 3)).unwrap();
        assert_eq!(grid.rows(), 2);
        assert_eq!(grid.cols(), 3);
        assert_eq!(grid.num_macros(), 6);
        assert_eq!(grid.total_cells(), 6 * 128 * 128);
        assert_eq!(grid.peak_macs_per_cycle(), 6 * 16 * 128);
        assert!(grid.is_uniform());
        assert!(grid.to_string().contains("2x3"));
    }

    #[test]
    fn heterogeneous_grid_mixes_macros() {
        let grid =
            MacroGrid::from_specs(1, 2, vec![spec(128, 128, 2, 3), spec(64, 256, 8, 3)]).unwrap();
        assert!(!grid.is_uniform());
        assert_eq!(grid.spec(0).local_array(), 2);
        assert_eq!(grid.spec(1).local_array(), 8);
        assert!(grid.to_string().contains("heterogeneous"));
    }

    #[test]
    fn distinct_specs_deduplicates_in_order() {
        let a = spec(128, 128, 2, 3);
        let b = spec(64, 256, 8, 3);
        let grid = MacroGrid::from_specs(2, 2, vec![a, b, a, b]).unwrap();
        assert_eq!(grid.distinct_specs(), vec![&a, &b]);
        let uniform = MacroGrid::uniform(3, 3, a).unwrap();
        assert_eq!(uniform.distinct_specs().len(), 1);
    }

    #[test]
    fn empty_or_mismatched_grids_rejected() {
        assert!(MacroGrid::uniform(0, 2, spec(128, 128, 8, 3)).is_err());
        assert!(MacroGrid::uniform(2, 0, spec(128, 128, 8, 3)).is_err());
        assert!(MacroGrid::from_specs(2, 2, vec![spec(128, 128, 8, 3)]).is_err());
    }

    #[test]
    fn mesh_coordinates_and_hops() {
        let grid = MacroGrid::uniform(2, 3, spec(128, 128, 8, 3)).unwrap();
        assert_eq!(grid.coordinate(0), (0, 0));
        assert_eq!(grid.coordinate(4), (1, 1));
        assert_eq!(grid.hops_from_buffer(0), 0);
        assert_eq!(grid.hops_from_buffer(5), 3);
        // Hops: 0,1,2,1,2,3 → mean 1.5.
        assert!((grid.mean_hops() - 1.5).abs() < 1e-12);
    }
}
