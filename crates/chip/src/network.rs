//! Whole-network workload types, re-exported from their new home.
//!
//! The `Network` family started life here, but multi-tenant scheduling
//! (see [`crate::partition::partition_mix`]) pushed it down a layer: a
//! [`WorkloadMix`] is a *workload*, not a chip artefact, so the types now
//! live in [`acim_workloads::network`] and [`acim_workloads::mix`].  This
//! module keeps the long-standing `acim_chip::network::*` paths working.

pub use acim_workloads::mix::{Tenant, TenantQuant, WorkloadMix};
pub use acim_workloads::network::{LayerKind, Network, NetworkLayer};
