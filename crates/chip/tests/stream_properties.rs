//! Property-based tests of the interleaved stream simulator.
//!
//! Two conservation laws the co-scheduler promises for *any* mix:
//!
//! 1. **Cycle conservation** — the interleaved schedule invents no work:
//!    the mix total is exactly the sum of every tenant's own layer
//!    cycles, on uniform and heterogeneous grids alike.
//! 2. **Order invariance** — tenant declaration order is a scheduling
//!    input, never an accounting input: on uniform grids (where placement
//!    cannot change which macro shape a tile lands on) reordering the
//!    tenants leaves aggregate energy, total cycles and every per-tenant
//!    error measurement bit-identical.

use acim_arch::AcimSpec;
use acim_chip::{simulate_mix, ChipSpec, MacroGrid, Network, WorkloadMix};
use proptest::prelude::*;

/// The three workload families, by catalogue index.
fn catalog(index: usize) -> Network {
    match index {
        0 => Network::edge_cnn(1),
        1 => Network::transformer_block(),
        _ => Network::snn_pipeline(),
    }
}

/// All orders of the three catalogue entries.
const PERMS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// Known-valid macro shapes spanning the design space corners.
fn spec(index: usize) -> AcimSpec {
    let (h, w, l, b) = match index {
        0 => (128, 32, 4, 4),
        1 => (64, 16, 4, 3),
        2 => (128, 128, 8, 4),
        _ => (512, 32, 4, 2),
    };
    AcimSpec::from_dimensions(h, w, l, b).unwrap()
}

fn buffer(index: usize) -> usize {
    [8, 32, 64][index]
}

/// Builds a mix over catalogue tenants `order`, with per-*network*
/// weights and activation widths (indexed by catalogue entry, so two
/// mixes over the same tenant set agree on every tenant's parameters
/// regardless of order).
fn build_mix(order: &[usize], params: &[(u32, u32)]) -> WorkloadMix {
    let mut mix = WorkloadMix::new("prop");
    for &index in order {
        let (weight, bits) = params[index];
        mix = mix.with_quantized_tenant(catalog(index), f64::from(weight) / 2.0, bits);
    }
    mix
}

/// Any mix: 1–3 distinct tenants in any order.
fn any_mix() -> impl Strategy<Value = WorkloadMix> {
    (
        0usize..6,
        1usize..=3,
        prop::collection::vec((1u32..=8, 1u32..=3), 3),
    )
        .prop_map(|(perm, len, params)| build_mix(&PERMS[perm][..len], &params))
}

/// Any chip, heterogeneous grids included.
fn any_chip() -> impl Strategy<Value = ChipSpec> {
    (
        1usize..=2,
        1usize..=2,
        prop::collection::vec(0usize..4, 4),
        0usize..3,
    )
        .prop_map(|(rows, cols, indices, buf)| {
            let specs: Vec<AcimSpec> = indices[..rows * cols].iter().map(|&i| spec(i)).collect();
            ChipSpec::new(
                MacroGrid::from_specs(rows, cols, specs).unwrap(),
                buffer(buf),
            )
            .unwrap()
        })
}

/// Any uniform chip (every grid position the same macro shape).
fn uniform_chip() -> impl Strategy<Value = ChipSpec> {
    (1usize..=2, 1usize..=2, 0usize..4, 0usize..3).prop_map(|(rows, cols, index, buf)| {
        ChipSpec::new(
            MacroGrid::uniform(rows, cols, spec(index)).unwrap(),
            buffer(buf),
        )
        .unwrap()
    })
}

/// The same 2–3-tenant set in two independently drawn orders.
fn permuted_mixes() -> impl Strategy<Value = (WorkloadMix, WorkloadMix)> {
    (
        0usize..6,
        0usize..6,
        2usize..=3,
        prop::collection::vec((1u32..=8, 1u32..=3), 3),
    )
        .prop_map(|(perm_a, perm_b, len, params)| {
            let order = |perm: usize| -> Vec<usize> {
                PERMS[perm].iter().copied().filter(|&i| i < len).collect()
            };
            (
                build_mix(&order(perm_a), &params),
                build_mix(&order(perm_b), &params),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn per_tenant_cycles_sum_to_the_interleaved_total(
        chip in any_chip(),
        mix in any_mix(),
        seed in 0u64..1024,
    ) {
        let report = simulate_mix(&chip, &mix, seed).unwrap();
        let per_tenant: u64 = report
            .tenants
            .iter()
            .map(|t| t.report.layers.iter().map(|l| l.cycles).sum::<u64>())
            .sum();
        prop_assert_eq!(report.total_cycles, per_tenant);
        prop_assert_eq!(report.tenants.len(), mix.len());
    }

    #[test]
    fn tenant_order_never_changes_aggregate_energy(
        chip in uniform_chip(),
        (mix_a, mix_b) in permuted_mixes(),
        seed in 0u64..1024,
    ) {
        let a = simulate_mix(&chip, &mix_a, seed).unwrap();
        let b = simulate_mix(&chip, &mix_b, seed).unwrap();
        prop_assert_eq!(a.total_energy_fj.to_bits(), b.total_energy_fj.to_bits());
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        // Each tenant's own measurements are order-invariant too: match
        // them up by name.
        for tenant in &a.tenants {
            let other = b
                .tenants
                .iter()
                .find(|t| t.name == tenant.name)
                .expect("same tenant set");
            prop_assert_eq!(
                tenant.report.total_energy_fj.to_bits(),
                other.report.total_energy_fj.to_bits()
            );
            prop_assert_eq!(
                tenant.report.max_relative_error().to_bits(),
                other.report.max_relative_error().to_bits()
            );
        }
    }
}
