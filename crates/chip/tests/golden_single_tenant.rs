//! Golden bit-identity regression for the multi-tenant refactor.
//!
//! The constants below are the `to_bits()` images of `evaluate_chip`
//! captured on the last single-network-only revision (commit before the
//! `WorkloadMix` refactor).  Both the legacy entry point and the
//! mix-of-one path must keep reproducing them bit-exactly: any drift
//! means the refactor changed single-tenant arithmetic, which it promises
//! not to do.

use acim_arch::AcimSpec;
use acim_chip::{evaluate_chip, evaluate_chip_mix, ChipSpec, MacroGrid, Network, WorkloadMix};

/// `(tag, [latency, throughput, energy, area, accuracy, utilization,
/// inferences/s])` as raw `f64::to_bits` values.
const GOLDEN: &[(&str, [u64; 7])] = &[
    (
        "A/cnn",
        [
            0x406b432617c1bda5,
            0x3fd7969c7c20bfdc,
            0x4077b83bfc4659e4,
            0x4060984a0e410b63,
            0x40319230c1ac6eee,
            0x3fe4924924924924,
            0x41517d9f97570729,
        ],
    ),
    (
        "A/xfmr",
        [
            0x4052f972474538ef,
            0x3fd4b9375edff17f,
            0x4058f94d275c82b5,
            0x4060984a0e410b63,
            0x403272d0e90368b0,
            0x3ff0000000000000,
            0x4169216be6025fe4,
        ],
    ),
    (
        "A/snn",
        [
            0x4032f972474538ef,
            0x3fcff2e007993ef9,
            0x40386a3fa30f817b,
            0x4060984a0e410b63,
            0x403332d0e90368b0,
            0x3fe5000000000000,
            0x4189216be6025fe4,
        ],
    ),
    (
        "B/cnn",
        [
            0x407174a8c154c986,
            0x3fd26b8ca6bfbc84,
            0x407c3808f2c47c53,
            0x404c4a1be2b4959e,
            0x402ba9a78c8ab3fc,
            0x3fe15f15f15f15f2,
            0x414b51262a7f8dad,
        ],
    ),
    (
        "B/xfmr",
        [
            0x4052f972474538ef,
            0x3fd4b9375edff17f,
            0x4058f6314f4aef77,
            0x404c4a1be2b4959e,
            0x403272d0e90368b0,
            0x3ff0000000000000,
            0x4169216be6025fe4,
        ],
    ),
    (
        "B/snn",
        [
            0x4032f972474538ef,
            0x3fcff2e007993ef9,
            0x40386723cafdee3c,
            0x404c4a1be2b4959e,
            0x403332d0e90368b0,
            0x3fe5000000000000,
            0x4189216be6025fe4,
        ],
    ),
];

fn chips() -> [(char, ChipSpec); 2] {
    let spec_a = AcimSpec::from_dimensions(128, 32, 4, 4).unwrap();
    let spec_b = AcimSpec::from_dimensions(64, 16, 4, 3).unwrap();
    [
        (
            'A',
            ChipSpec::new(MacroGrid::uniform(2, 2, spec_a).unwrap(), 64).unwrap(),
        ),
        (
            'B',
            ChipSpec::new(
                MacroGrid::from_specs(1, 2, vec![spec_a, spec_b]).unwrap(),
                32,
            )
            .unwrap(),
        ),
    ]
}

fn networks() -> [(&'static str, Network); 3] {
    [
        ("cnn", Network::edge_cnn(2)),
        ("xfmr", Network::transformer_block()),
        ("snn", Network::snn_pipeline()),
    ]
}

fn golden(tag: &str) -> [u64; 7] {
    GOLDEN
        .iter()
        .find(|(t, _)| *t == tag)
        .unwrap_or_else(|| panic!("no golden row {tag}"))
        .1
}

fn bits(m: &acim_chip::ChipMetrics) -> [u64; 7] {
    [
        m.latency_ns.to_bits(),
        m.throughput_tops.to_bits(),
        m.energy_per_inference_pj.to_bits(),
        m.area_mf2.to_bits(),
        m.accuracy_db.to_bits(),
        m.mean_utilization.to_bits(),
        m.inferences_per_s.to_bits(),
    ]
}

#[test]
fn single_network_evaluation_matches_pre_refactor_golden_bits() {
    for (ctag, chip) in &chips() {
        for (ntag, network) in &networks() {
            let tag = format!("{ctag}/{ntag}");
            let metrics = evaluate_chip(chip, network).unwrap();
            assert_eq!(bits(&metrics), golden(&tag), "{tag} drifted");
        }
    }
}

#[test]
fn mix_of_one_matches_pre_refactor_golden_bits() {
    for (ctag, chip) in &chips() {
        for (ntag, network) in &networks() {
            let tag = format!("{ctag}/{ntag}");
            let mix = WorkloadMix::single(network.clone());
            let metrics = evaluate_chip_mix(chip, &mix).unwrap();
            assert!(metrics.is_single());
            assert_eq!(bits(&metrics.combined()), golden(&tag), "{tag} drifted");
        }
    }
}
