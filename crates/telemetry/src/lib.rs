//! Dependency-free telemetry substrate for the EasyACIM reproduction.
//!
//! Three pillars, mirroring what the DAC'24 flow needs to *observe* its
//! own agility claims:
//!
//! 1. **Metrics registry** ([`Registry`]): named counters, gauges and
//!    fixed-bucket histograms (log-spaced latency buckets with
//!    p50/p90/p99 estimation). Increments are single atomic operations —
//!    cheap enough for the per-genome hot path — and the registry mutex
//!    is poison-tolerant like the workspace's `ClockMap`.
//! 2. **Tracing spans** ([`Span`], [`SpanRecorder`]): guard-based spans
//!    with start/stop timestamps, parent links and `key=value`
//!    attributes, recorded into a bounded ring buffer so memory stays
//!    flat under sustained service load.
//! 3. **Exposition** ([`expose::prometheus_text`], [`expose::json_text`],
//!    [`TelemetrySnapshot::diff`]): point-in-time snapshots rendered as
//!    Prometheus text or JSON, with a diff API for per-phase attribution.
//!
//! The [`Telemetry`] bundle ties the pillars together and carries an
//! enabled flag: a disabled bundle vends inert spans and empty snapshots,
//! and the workspace's tests prove instrumented runs produce bit-identical
//! Pareto frontiers either way.
//!
//! Like the vendored rayon shim, this crate is std-only, `forbid(unsafe)`,
//! and intentionally small — it is a measurement substrate, not a
//! framework.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod histogram;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use expose::{json_text, prometheus_text};
pub use histogram::{default_latency_bounds, Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Labels, Registry};
pub use snapshot::{MetricSample, MetricValue, TelemetrySnapshot};
pub use span::{Span, SpanId, SpanRecord, SpanRecorder, SpanText};

/// The telemetry bundle: one registry, one span recorder, one enabled
/// flag. Cheap to clone (all clones share state); pass it by value across
/// thread and stage boundaries.
#[derive(Debug, Clone)]
pub struct Telemetry {
    registry: Registry,
    spans: SpanRecorder,
    enabled: bool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// An enabled bundle with the default span-ring capacity.
    pub fn new() -> Self {
        Self::with_span_capacity(SpanRecorder::DEFAULT_CAPACITY)
    }

    /// An enabled bundle retaining at most `capacity` completed spans.
    pub fn with_span_capacity(capacity: usize) -> Self {
        Self {
            registry: Registry::new(),
            spans: SpanRecorder::new(capacity),
            enabled: true,
        }
    }

    /// A disabled bundle: spans are inert, snapshots empty. Instrumented
    /// code paths stay observably passive.
    pub fn disabled() -> Self {
        Self {
            registry: Registry::new(),
            spans: SpanRecorder::new(1),
            enabled: false,
        }
    }

    /// Whether this bundle records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The metric registry. Metrics registered on a disabled bundle still
    /// work (atomics are cheaper than a branch on every increment); they
    /// are simply never exposed because [`Telemetry::snapshot`] returns
    /// an empty snapshot.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span recorder.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Opens a root span, inert when disabled.
    pub fn span(&self, name: impl Into<SpanText>) -> Span {
        if self.enabled {
            self.spans.span(name)
        } else {
            Span::inert()
        }
    }

    /// Opens a span under an explicit parent id, inert when disabled.
    pub fn span_with_parent(&self, name: impl Into<SpanText>, parent: Option<SpanId>) -> Span {
        if self.enabled {
            self.spans.span_with_parent(name, parent)
        } else {
            Span::inert()
        }
    }

    /// A point-in-time snapshot of every metric and recorded span; empty
    /// when disabled.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        if !self.enabled {
            return TelemetrySnapshot::default();
        }
        TelemetrySnapshot {
            samples: self.registry.snapshot(),
            spans: self.spans.snapshot(),
            spans_dropped: self.spans.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_bundle_records_and_snapshots() {
        let telemetry = Telemetry::with_span_capacity(8);
        assert!(telemetry.is_enabled());
        telemetry.registry().counter("c_total", "", &[]).add(2);
        {
            let mut span = telemetry.span("request");
            span.attr("kind", "macro");
            drop(span.child("explore"));
        }
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter("c_total", &[]), Some(2));
        assert_eq!(snapshot.spans.len(), 2);
        assert!(!snapshot.is_empty());
    }

    #[test]
    fn disabled_bundle_is_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        telemetry.registry().counter("c_total", "", &[]).add(2);
        let span = telemetry.span("request");
        assert!(!span.is_recording());
        assert_eq!(span.as_parent(), None);
        drop(span);
        let snapshot = telemetry.snapshot();
        assert!(snapshot.is_empty());
        assert_eq!(expose::prometheus_text(&snapshot), "");
    }

    #[test]
    fn clones_share_state() {
        let telemetry = Telemetry::new();
        let clone = telemetry.clone();
        clone.registry().counter("shared_total", "", &[]).inc();
        drop(clone.span("from-clone"));
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter("shared_total", &[]), Some(1));
        assert_eq!(snapshot.spans.len(), 1);
    }
}
