//! Structured tracing spans with a bounded ring-buffer recorder.
//!
//! A [`Span`] is a guard: it captures a start timestamp when created and
//! records itself — name, parent link, duration, `key=value` attributes —
//! into its [`SpanRecorder`] when dropped. Parent links (span ids) tie
//! the records into per-request trees: service submit → stage pipeline →
//! NSGA-II generation → batch eval → macro-cache lookup.
//!
//! The recorder is a fixed-capacity ring (`VecDeque`): once full, the
//! oldest record is evicted and a `dropped` counter bumped, so memory
//! stays flat no matter how long the service runs. Recording takes the
//! ring mutex once per span *completion* (not per hot-path event), which
//! keeps the cost well away from the per-genome path.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Identifier of a recorded span, unique within one recorder (ids start
/// at 1 and increase monotonically; 0 is never issued).
pub type SpanId = u64;

/// Span name / attribute text.  `Cow` so the common case — `'static`
/// literals like `"request"` or `"stage"` — records without allocating;
/// only genuinely dynamic text (job ids, space signatures) pays for an
/// owned `String`.
pub type SpanText = Cow<'static, str>;

/// One completed span as stored in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Recorder-unique id (monotonic, so later spans have larger ids).
    pub id: SpanId,
    /// Id of the enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `"request"`, `"explore"`, `"generation"`.
    pub name: SpanText,
    /// Start time in microseconds since the recorder was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Free-form `key=value` attributes, in insertion order.
    pub attributes: Vec<(SpanText, SpanText)>,
}

#[derive(Debug)]
struct Ring {
    records: std::collections::VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct RecorderInner {
    epoch: Instant,
    next_id: AtomicU64,
    ring: Mutex<Ring>,
}

/// A bounded, cheaply cloneable recorder of completed spans.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl SpanRecorder {
    /// Default ring capacity: enough for several `--quick` requests' worth
    /// of stage + generation spans without growing past ~1 MB.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a recorder keeping at most `capacity` completed spans
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(RecorderInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                ring: Mutex::new(Ring {
                    records: std::collections::VecDeque::new(),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // Poison-tolerant like the registry: a ring of plain records is
        // valid no matter where a panicking thread stopped.
        self.inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn allocate_id(&self) -> SpanId {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.lock();
        if ring.records.len() == ring.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(record);
    }

    /// Opens a root span. The span records itself when dropped.
    pub fn span(&self, name: impl Into<SpanText>) -> Span {
        self.span_with_parent(name, None)
    }

    /// Opens a span under an explicit parent id.
    pub fn span_with_parent(&self, name: impl Into<SpanText>, parent: Option<SpanId>) -> Span {
        Span {
            recorder: Some(self.clone()),
            id: self.allocate_id(),
            parent,
            name: name.into(),
            started: Instant::now(),
            attributes: Vec::new(),
        }
    }

    /// Records an already-measured interval as a completed span — the
    /// escape hatch for call sites (e.g. progress-observer callbacks) that
    /// know a phase's start and end but cannot hold a guard across it.
    /// Returns the id so callers can parent further spans under it.
    pub fn record_complete(
        &self,
        name: impl Into<SpanText>,
        parent: Option<SpanId>,
        started: Instant,
        duration: Duration,
        attributes: Vec<(SpanText, SpanText)>,
    ) -> SpanId {
        let id = self.allocate_id();
        self.push(SpanRecord {
            id,
            parent,
            name: name.into(),
            start_us: started
                .saturating_duration_since(self.inner.epoch)
                .as_micros() as u64,
            duration_us: duration.as_micros() as u64,
            attributes,
        });
        id
    }

    /// Copies out the recorded spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.lock().records.iter().cloned().collect()
    }

    /// Number of spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// `true` when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }
}

/// A live span guard. Records itself into its recorder on drop; inert
/// spans (from [`Span::inert`]) record nothing, so disabled-telemetry
/// call sites pay only an `Option` check.
#[derive(Debug)]
pub struct Span {
    recorder: Option<SpanRecorder>,
    id: SpanId,
    parent: Option<SpanId>,
    name: SpanText,
    started: Instant,
    attributes: Vec<(SpanText, SpanText)>,
}

impl Span {
    /// A no-op span: records nothing, children are also inert.
    pub fn inert() -> Self {
        Self {
            recorder: None,
            id: 0,
            parent: None,
            name: SpanText::Borrowed(""),
            started: Instant::now(),
            attributes: Vec::new(),
        }
    }

    /// `true` when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// This span's id (0 for inert spans).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// This span's id as a parent link: `None` for inert spans, so child
    /// records never point at the unissued id 0.
    pub fn as_parent(&self) -> Option<SpanId> {
        if self.recorder.is_some() {
            Some(self.id)
        } else {
            None
        }
    }

    /// Attaches a `key=value` attribute.
    pub fn attr(&mut self, key: impl Into<SpanText>, value: impl Into<SpanText>) {
        if self.recorder.is_some() {
            self.attributes.push((key.into(), value.into()));
        }
    }

    /// Opens a child span.
    pub fn child(&self, name: impl Into<SpanText>) -> Span {
        match &self.recorder {
            Some(recorder) => recorder.span_with_parent(name, Some(self.id)),
            None => Span::inert(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(recorder) = self.recorder.take() {
            let record = SpanRecord {
                id: self.id,
                parent: self.parent,
                name: std::mem::replace(&mut self.name, SpanText::Borrowed("")),
                start_us: self
                    .started
                    .saturating_duration_since(recorder.inner.epoch)
                    .as_micros() as u64,
                duration_us: self.started.elapsed().as_micros() as u64,
                attributes: std::mem::take(&mut self.attributes),
            };
            recorder.push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_parent_links() {
        let recorder = SpanRecorder::new(16);
        {
            let mut root = recorder.span("request");
            root.attr("kind", "macro");
            let child = root.child("explore");
            drop(child);
        }
        let records = recorder.snapshot();
        assert_eq!(records.len(), 2);
        // Children drop first, so they appear before their parent.
        let child = &records[0];
        let root = &records[1];
        assert_eq!(child.name, "explore");
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(root.name, "request");
        assert_eq!(root.parent, None);
        assert_eq!(
            root.attributes,
            vec![(SpanText::from("kind"), SpanText::from("macro"))]
        );
        assert!(root.id >= 1);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let recorder = SpanRecorder::new(3);
        for i in 0..5 {
            drop(recorder.span(format!("s{i}")));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.capacity(), 3);
        assert_eq!(recorder.dropped(), 2);
        let names: Vec<String> = recorder
            .snapshot()
            .into_iter()
            .map(|r| r.name.into_owned())
            .collect();
        assert_eq!(names, vec!["s2", "s3", "s4"]);
    }

    #[test]
    fn inert_spans_record_nothing() {
        let recorder = SpanRecorder::new(4);
        let mut inert = Span::inert();
        inert.attr("ignored", "yes");
        assert!(!inert.is_recording());
        assert_eq!(inert.as_parent(), None);
        let child = inert.child("also-inert");
        assert!(!child.is_recording());
        drop(child);
        drop(inert);
        assert!(recorder.is_empty());
    }

    #[test]
    fn record_complete_backfills_measured_intervals() {
        let recorder = SpanRecorder::new(4);
        let started = Instant::now();
        let id = recorder.record_complete(
            "generation",
            Some(7),
            started,
            Duration::from_millis(5),
            vec![("stage".into(), "explore".into())],
        );
        assert!(id >= 1);
        let records = recorder.snapshot();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].parent, Some(7));
        assert_eq!(records[0].duration_us, 5000);
    }
}
