//! Exposition encoders: Prometheus text format and JSON.
//!
//! Both encoders are pure functions over a [`TelemetrySnapshot`] — no I/O,
//! no state — so callers decide where the bytes go (stdout for the
//! example binary's `--telemetry` flag, an HTTP response in a future
//! deadline-aware front-end, a file in CI). The Prometheus encoder
//! follows the text exposition format version 0.0.4: `# HELP`/`# TYPE`
//! headers, cumulative `_bucket{le=...}` series ending in `+Inf`, and
//! `_sum`/`_count` companions for histograms. The JSON encoder is
//! hand-rolled (the workspace vendors no serde) and emits metrics plus
//! the span tree.

use crate::histogram::HistogramSnapshot;
use crate::snapshot::{MetricSample, MetricValue, TelemetrySnapshot};

/// Escapes a Prometheus label value: backslash, double-quote, newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a label set (optionally with an extra `le` pair) as
/// `{k="v",...}`, or the empty string when there are no labels.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        pairs.push(format!("le=\"{le}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Formats an `f64` for exposition: finite values via `Display` (which
/// never emits NaN-like text for a finite input), non-finite as `0`.
fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Samples arrive sorted by `(name, labels)`, so series of the same
/// metric are contiguous and the `# HELP`/`# TYPE` header is emitted once
/// per metric name.
pub fn prometheus_text(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for sample in &snapshot.samples {
        if last_name != Some(sample.name.as_str()) {
            let kind = match sample.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if !sample.help.is_empty() {
                out.push_str(&format!("# HELP {} {}\n", sample.name, sample.help));
            }
            out.push_str(&format!("# TYPE {} {kind}\n", sample.name));
            last_name = Some(sample.name.as_str());
        }
        match &sample.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    sample.name,
                    label_block(&sample.labels, None)
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    sample.name,
                    label_block(&sample.labels, None),
                    number(*v)
                ));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, bound) in h.bounds.iter().enumerate() {
                    cumulative += h.counts.get(i).copied().unwrap_or(0);
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        sample.name,
                        label_block(&sample.labels, Some(&number(*bound)))
                    ));
                }
                cumulative += h.counts.last().copied().unwrap_or(0);
                out.push_str(&format!(
                    "{}_bucket{} {cumulative}\n",
                    sample.name,
                    label_block(&sample.labels, Some("+Inf"))
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    sample.name,
                    label_block(&sample.labels, None),
                    number(h.sum)
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    sample.name,
                    label_block(&sample.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

/// Escapes a string for JSON.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let bounds: Vec<String> = h.bounds.iter().map(|b| number(*b)).collect();
    let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
    format!(
        "{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        bounds.join(","),
        counts.join(","),
        number(h.sum),
        h.count,
        number(h.quantile(0.5)),
        number(h.quantile(0.9)),
        number(h.quantile(0.99)),
    )
}

fn json_sample(sample: &MetricSample) -> String {
    let (kind, value) = match &sample.value {
        MetricValue::Counter(v) => ("counter", v.to_string()),
        MetricValue::Gauge(v) => ("gauge", number(*v)),
        MetricValue::Histogram(h) => ("histogram", json_histogram(h)),
    };
    format!(
        "{{\"name\":{},\"type\":\"{kind}\",\"labels\":{},\"value\":{value}}}",
        json_string(&sample.name),
        json_labels(&sample.labels),
    )
}

/// Renders a snapshot as a single JSON object:
/// `{"metrics": [...], "spans": [...], "spans_dropped": N}`.
pub fn json_text(snapshot: &TelemetrySnapshot) -> String {
    let metrics: Vec<String> = snapshot.samples.iter().map(json_sample).collect();
    let spans: Vec<String> = snapshot
        .spans
        .iter()
        .map(|s| {
            let attrs: Vec<String> = s
                .attributes
                .iter()
                .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
                .collect();
            format!(
                "{{\"id\":{},\"parent\":{},\"name\":{},\"start_us\":{},\"duration_us\":{},\"attributes\":{{{}}}}}",
                s.id,
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                json_string(&s.name),
                s.start_us,
                s.duration_us,
                attrs.join(","),
            )
        })
        .collect();
    format!(
        "{{\"metrics\":[{}],\"spans\":[{}],\"spans_dropped\":{}}}",
        metrics.join(","),
        spans.join(","),
        snapshot.spans_dropped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::SpanRecorder;

    fn demo_snapshot() -> TelemetrySnapshot {
        let registry = Registry::new();
        registry
            .counter(
                "service_requests_total",
                "Requests accepted",
                &[("kind", "macro")],
            )
            .add(2);
        registry
            .gauge("service_active_jobs", "Jobs running", &[])
            .set(1.0);
        let hist = registry.histogram_with_bounds(
            "service_request_seconds",
            "Request latency",
            &[("kind", "macro")],
            &[0.5, 1.0],
        );
        hist.observe(0.2);
        hist.observe(0.7);
        let spans = SpanRecorder::new(4);
        {
            let mut span = spans.span("request");
            span.attr("kind", "macro");
        }
        TelemetrySnapshot {
            samples: registry.snapshot(),
            spans: spans.snapshot(),
            spans_dropped: 0,
        }
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let text = prometheus_text(&demo_snapshot());
        assert!(text.contains("# HELP service_requests_total Requests accepted\n"));
        assert!(text.contains("# TYPE service_requests_total counter\n"));
        assert!(text.contains("service_requests_total{kind=\"macro\"} 2\n"));
        assert!(text.contains("# TYPE service_active_jobs gauge\n"));
        assert!(text.contains("service_active_jobs 1\n"));
        assert!(text.contains("# TYPE service_request_seconds histogram\n"));
        assert!(text.contains("service_request_seconds_bucket{kind=\"macro\",le=\"0.5\"} 1\n"));
        assert!(text.contains("service_request_seconds_bucket{kind=\"macro\",le=\"1\"} 2\n"));
        assert!(text.contains("service_request_seconds_bucket{kind=\"macro\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("service_request_seconds_count{kind=\"macro\"} 2\n"));
        assert!(!text.contains("NaN"));
        assert!(!text.contains("inf"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_series, value) = line.rsplit_once(' ').expect("space-separated value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter("c_total", "", &[("space", "macro/8x[4..16]\"q\"")])
            .inc();
        let snapshot = TelemetrySnapshot {
            samples: registry.snapshot(),
            spans: Vec::new(),
            spans_dropped: 0,
        };
        let text = prometheus_text(&snapshot);
        assert!(
            text.contains(r#"space="macro/8x[4..16]\"q\"""#),
            "got: {text}"
        );
    }

    #[test]
    fn json_is_parseable_shape_and_nan_free() {
        let json = json_text(&demo_snapshot());
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("\"name\":\"service_requests_total\""));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"spans\":[{"));
        assert!(json.contains("\"name\":\"request\""));
        assert!(json.contains("\"kind\":\"macro\""));
        assert!(json.ends_with("\"spans_dropped\":0}"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        // Balanced braces/brackets — a cheap structural sanity check that
        // catches missed commas and unterminated strings.
        let mut depth = 0i32;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_string);
    }

    #[test]
    fn empty_snapshot_encodes_cleanly() {
        let empty = TelemetrySnapshot::default();
        assert_eq!(prometheus_text(&empty), "");
        assert_eq!(
            json_text(&empty),
            "{\"metrics\":[],\"spans\":[],\"spans_dropped\":0}"
        );
    }
}
