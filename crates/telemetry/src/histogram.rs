//! Fixed-bucket latency histograms with an atomic fast path.
//!
//! A [`Histogram`] owns a fixed, immutable set of log-spaced upper bounds
//! plus one overflow bucket; [`Histogram::observe`] is three atomic
//! operations (bucket increment, sum accumulate, count increment) and
//! never takes a lock, so it is cheap enough for the per-genome hot path.
//! Reading happens through [`HistogramSnapshot`], a plain-old-data copy
//! that estimates quantiles by linear interpolation inside the bucket
//! that crosses the target rank — the same estimation Prometheus's
//! `histogram_quantile` performs server-side, done here so reports can
//! print p50/p90/p99 without a scrape pipeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log-spaced finite buckets in [`default_latency_bounds`]:
/// powers of two from 1 µs up to ~8.4 s, plus the implicit overflow bucket.
pub const DEFAULT_LATENCY_BUCKETS: usize = 24;

/// The default latency bounds, in seconds: `1e-6 * 2^i` for
/// `i in 0..DEFAULT_LATENCY_BUCKETS` (1 µs, 2 µs, 4 µs, … ~8.4 s).
///
/// Log spacing keeps relative quantile error bounded (each bucket spans a
/// factor of two) across the six decades the workspace cares about, from
/// single cached-genome lookups to full `--quick` chip explorations.
pub fn default_latency_bounds() -> Vec<f64> {
    (0..DEFAULT_LATENCY_BUCKETS as i32)
        .map(|i| 1e-6 * f64::powi(2.0, i))
        .collect()
}

/// Interior of a histogram, shared by all clones of its handle.
#[derive(Debug)]
struct HistogramInner {
    /// Finite upper bounds, strictly increasing. `buckets[i]` counts
    /// observations `<= bounds[i]`; `buckets[bounds.len()]` is overflow.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Sum of all observed values, stored as `f64` bits and accumulated
    /// with a CAS loop (observations are far rarer than counter bumps, so
    /// the loop retry rate is negligible).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A cheaply cloneable handle onto a fixed-bucket histogram.
///
/// All clones share the same buckets; recording is lock-free.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Creates a histogram with the given finite upper bounds (an overflow
    /// bucket is added implicitly). Non-finite bounds are dropped and the
    /// rest sorted, so a malformed caller degrades instead of panicking.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds compare"));
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds,
                buckets,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a histogram with the [`default_latency_bounds`].
    pub fn latency() -> Self {
        Self::new(&default_latency_bounds())
    }

    /// Records one observation. Negative or non-finite values are clamped
    /// to zero so the histogram can never poison downstream quantile math.
    pub fn observe(&self, value: f64) {
        let value = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut current = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, duration: std::time::Duration) {
        self.observe(duration.as_secs_f64());
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Copies the current bucket state out as plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed)),
            count: self.inner.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-old-data copy of a histogram: finite bounds, per-bucket counts
/// (one longer than `bounds`, the extra slot being overflow), total sum
/// and total count. Every accessor is NaN/inf-free by construction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Finite upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (overflow last).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Builds a snapshot directly from bucket data, sanitising the pieces
    /// so foreign sources (e.g. the pool's queue-wait buckets) can be
    /// bridged without trusting their arithmetic.
    pub fn from_parts(bounds: Vec<f64>, counts: Vec<u64>, sum: f64, count: u64) -> Self {
        let mut counts = counts;
        counts.resize(bounds.len() + 1, 0);
        Self {
            bounds,
            counts,
            sum: if sum.is_finite() { sum.max(0.0) } else { 0.0 },
            count,
        }
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation within the bucket containing the target rank.
    ///
    /// Returns `0.0` for an empty histogram; observations in the overflow
    /// bucket report the largest finite bound. Never NaN or infinite.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cumulative + c;
            if next >= target && c > 0 {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: the best finite answer is the top bound.
                    return self.bounds.last().copied().unwrap_or(0.0);
                };
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let into = (target - cumulative) as f64 / c as f64;
                return lower + (upper - lower) * into;
            }
            cumulative = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Mean observed value, `0.0` when empty. Never NaN or infinite.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.sum / self.count as f64;
        if mean.is_finite() {
            mean.max(0.0)
        } else {
            0.0
        }
    }

    /// The per-bucket difference `self - earlier` (saturating), for
    /// attributing observations to a phase. Bounds are taken from `self`;
    /// an `earlier` snapshot with different bounds diffs as all-zero.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let comparable = earlier.bounds == self.bounds;
        let counts = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let then = if comparable {
                    earlier.counts.get(i).copied().unwrap_or(0)
                } else {
                    0
                };
                c.saturating_sub(then)
            })
            .collect();
        let sum = if comparable {
            (self.sum - earlier.sum).max(0.0)
        } else {
            self.sum
        };
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            sum: if sum.is_finite() { sum } else { 0.0 },
            count: self
                .count
                .saturating_sub(if comparable { earlier.count } else { 0 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bounds_are_log_spaced_and_sorted() {
        let bounds = default_latency_bounds();
        assert_eq!(bounds.len(), DEFAULT_LATENCY_BUCKETS);
        assert!((bounds[0] - 1e-6).abs() < 1e-12);
        for pair in bounds.windows(2) {
            assert!((pair[1] / pair[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn observe_routes_to_the_right_bucket() {
        let hist = Histogram::new(&[1.0, 2.0, 4.0]);
        hist.observe(0.5);
        hist.observe(1.5);
        hist.observe(3.0);
        hist.observe(100.0); // overflow
        let snap = hist.snapshot();
        assert_eq!(snap.counts, vec![1, 1, 1, 1]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 105.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_and_never_produce_nan() {
        let hist = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            hist.observe(0.5);
        }
        for _ in 0..50 {
            hist.observe(3.0);
        }
        let snap = hist.snapshot();
        let p50 = snap.quantile(0.5);
        assert!(p50 > 0.0 && p50 <= 1.0, "p50 = {p50}");
        let p99 = snap.quantile(0.99);
        assert!(p99 > 2.0 && p99 <= 4.0, "p99 = {p99}");
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0, -1.0, 2.0] {
            assert!(snap.quantile(q).is_finite());
        }
        assert!(snap.mean().is_finite());
    }

    #[test]
    fn empty_and_overflow_quantiles_are_finite() {
        let empty = Histogram::new(&[1.0]).snapshot();
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.mean(), 0.0);

        let hist = Histogram::new(&[1.0, 8.0]);
        hist.observe(1e9); // everything overflows
        let snap = hist.snapshot();
        assert_eq!(snap.quantile(0.99), 8.0);
    }

    #[test]
    fn hostile_observations_are_clamped() {
        let hist = Histogram::new(&[1.0]);
        hist.observe(f64::NAN);
        hist.observe(f64::INFINITY);
        hist.observe(-5.0);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.counts[0], 3);
        assert_eq!(snap.sum, 0.0);
    }

    #[test]
    fn delta_since_attributes_a_phase() {
        let hist = Histogram::new(&[1.0, 2.0]);
        hist.observe(0.5);
        let before = hist.snapshot();
        hist.observe(1.5);
        hist.observe(0.1);
        let delta = hist.snapshot().delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.counts, vec![1, 1, 0]);
        assert!((delta.sum - 1.6).abs() < 1e-9);
        // Foreign bounds: diff degrades to self, never panics.
        let foreign = HistogramSnapshot::from_parts(vec![9.0], vec![7, 7], 100.0, 14);
        let delta = hist.snapshot().delta_since(&foreign);
        assert_eq!(delta.count, 3);
    }

    #[test]
    fn from_parts_sanitises_foreign_data() {
        let snap = HistogramSnapshot::from_parts(vec![1.0, 2.0], vec![1], f64::NAN, 1);
        assert_eq!(snap.counts.len(), 3);
        assert_eq!(snap.sum, 0.0);
    }
}
