//! Named metric registry vending lock-free counter, gauge and histogram
//! handles.
//!
//! Registration (rare: once per metric name + label set) takes a
//! poison-tolerant mutex; the handles it returns are `Arc`-backed atomics,
//! so the hot path — `counter.inc()`, `gauge.set(..)`,
//! `histogram.observe(..)` — never locks. Registering the same
//! `(name, labels)` twice returns a handle onto the *same* underlying
//! metric, which is what lets independently constructed components (the
//! cached-problem wrapper, the macro-cache client, the service worker)
//! share counters without threading handles through every constructor.

use crate::histogram::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter. Clones share the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a free-standing counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Raises the counter to `value` if it is currently lower (monotone
    /// max). This is the bridge for mirroring a foreign monotone source —
    /// e.g. the pool's process-global task counter — into the registry
    /// without double counting across repeated snapshots.
    pub fn record_absolute(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic). Clones share
/// the same value.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Creates a free-standing gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge. Non-finite values are stored as zero so exposition
    /// output stays NaN/inf-free.
    pub fn set(&self, value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) with a CAS loop.
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(current) + delta;
            let next = if next.is_finite() { next } else { 0.0 };
            match self.bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Adds one (e.g. a job entering a queue).
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one (e.g. a job leaving a queue).
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A label set: sorted `key=value` pairs identifying one time series.
pub type Labels = Vec<(String, String)>;

/// Normalises a label slice into the canonical sorted ordering used for
/// identity comparisons and exposition.
fn canonical_labels(labels: &[(&str, &str)]) -> Labels {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (sanitise_name(k), (*v).to_string()))
        .collect();
    labels.sort();
    labels.dedup_by(|a, b| a.0 == b.0);
    labels
}

/// Restricts a metric or label name to the Prometheus charset
/// `[a-zA-Z_][a-zA-Z0-9_]*`, replacing anything else with `_`.
pub(crate) fn sanitise_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// One registered time series: identity plus its handle.
#[derive(Debug)]
struct Registered<H> {
    name: String,
    labels: Labels,
    help: String,
    handle: H,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<Registered<Counter>>,
    gauges: Vec<Registered<Gauge>>,
    histograms: Vec<Registered<Histogram>>,
}

impl RegistryInner {
    fn find_or_insert<H: Clone>(
        series: &mut Vec<Registered<H>>,
        name: String,
        labels: Labels,
        help: &str,
        make: impl FnOnce() -> H,
    ) -> H {
        if let Some(existing) = series.iter().find(|r| r.name == name && r.labels == labels) {
            return existing.handle.clone();
        }
        let handle = make();
        series.push(Registered {
            name,
            labels,
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }
}

/// The metric registry. Cheap to clone; all clones share the same metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // Poison tolerance mirrors ClockMap: metric state is a bag of
        // atomics, valid regardless of where a panicking thread stopped.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or re-fetches) a counter under `name` + `labels`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let name = sanitise_name(name);
        let labels = canonical_labels(labels);
        RegistryInner::find_or_insert(&mut self.lock().counters, name, labels, help, Counter::new)
    }

    /// Registers (or re-fetches) a counter backed by an *existing* handle,
    /// so a component that already owns a `Counter` can expose it. If the
    /// series exists the registered handle wins and is returned.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: Counter,
    ) -> Counter {
        let name = sanitise_name(name);
        let labels = canonical_labels(labels);
        RegistryInner::find_or_insert(&mut self.lock().counters, name, labels, help, || counter)
    }

    /// Registers (or re-fetches) a gauge under `name` + `labels`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let name = sanitise_name(name);
        let labels = canonical_labels(labels);
        RegistryInner::find_or_insert(&mut self.lock().gauges, name, labels, help, Gauge::new)
    }

    /// Registers (or re-fetches) a histogram with the default latency
    /// buckets under `name` + `labels`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with_bounds(
            name,
            help,
            labels,
            &crate::histogram::default_latency_bounds(),
        )
    }

    /// Registers (or re-fetches) a histogram with explicit bucket bounds.
    /// Bounds only apply on first registration; later calls return the
    /// existing series unchanged.
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let name = sanitise_name(name);
        let labels = canonical_labels(labels);
        RegistryInner::find_or_insert(&mut self.lock().histograms, name, labels, help, || {
            Histogram::new(bounds)
        })
    }

    /// Copies every registered series into a plain-data snapshot, sorted
    /// by `(name, labels)` for stable exposition output.
    pub fn snapshot(&self) -> Vec<crate::snapshot::MetricSample> {
        use crate::snapshot::{MetricSample, MetricValue};
        let inner = self.lock();
        let mut samples: Vec<MetricSample> =
            Vec::with_capacity(inner.counters.len() + inner.gauges.len() + inner.histograms.len());
        for r in &inner.counters {
            samples.push(MetricSample {
                name: r.name.clone(),
                help: r.help.clone(),
                labels: r.labels.clone(),
                value: MetricValue::Counter(r.handle.get()),
            });
        }
        for r in &inner.gauges {
            samples.push(MetricSample {
                name: r.name.clone(),
                help: r.help.clone(),
                labels: r.labels.clone(),
                value: MetricValue::Gauge(r.handle.get()),
            });
        }
        for r in &inner.histograms {
            samples.push(MetricSample {
                name: r.name.clone(),
                help: r.help.clone(),
                labels: r.labels.clone(),
                value: MetricValue::Histogram(r.handle.snapshot()),
            });
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.record_absolute(3); // lower: no effect
        assert_eq!(c.get(), 5);
        c.record_absolute(9);
        assert_eq!(c.get(), 9);

        let g = Gauge::new();
        g.set(2.5);
        g.inc();
        g.dec();
        g.add(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
        g.set(f64::NAN);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn re_registration_returns_the_same_series() {
        let registry = Registry::new();
        let a = registry.counter("hits_total", "cache hits", &[("space", "m1")]);
        let b = registry.counter("hits_total", "cache hits", &[("space", "m1")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are a different series.
        let other = registry.counter("hits_total", "cache hits", &[("space", "m2")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let registry = Registry::new();
        let a = registry.gauge("g", "", &[("a", "1"), ("b", "2")]);
        let b = registry.gauge("g", "", &[("b", "2"), ("a", "1")]);
        a.set(7.0);
        assert_eq!(b.get(), 7.0);
    }

    #[test]
    fn register_counter_adopts_an_existing_handle() {
        let registry = Registry::new();
        let owned = Counter::new();
        owned.add(10);
        let adopted = registry.register_counter("pre_owned_total", "", &[], owned.clone());
        owned.inc();
        assert_eq!(adopted.get(), 11);
        // A second registration under the same identity keeps the first.
        let fresh = Counter::new();
        let resolved = registry.register_counter("pre_owned_total", "", &[], fresh);
        assert_eq!(resolved.get(), 11);
    }

    #[test]
    fn names_are_sanitised_to_the_prometheus_charset() {
        assert_eq!(sanitise_name("macro/8x[4..16]"), "macro_8x_4__16_");
        assert_eq!(sanitise_name("1bad"), "_bad");
        assert_eq!(sanitise_name(""), "_");
        assert_eq!(sanitise_name("ok_name2"), "ok_name2");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let registry = Registry::new();
        registry.counter("z_total", "", &[]).add(1);
        registry.gauge("a_gauge", "", &[]).set(4.0);
        registry.histogram("m_seconds", "", &[]).observe(0.001);
        let samples = registry.snapshot();
        let names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a_gauge", "m_seconds", "z_total"]);
    }
}
