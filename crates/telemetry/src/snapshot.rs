//! Point-in-time telemetry snapshots and the diff API.
//!
//! A [`TelemetrySnapshot`] is plain data: every registered metric series
//! (copied out of the registry) plus the recorded span ring. Snapshots
//! are what cross API boundaries — `ExplorationService::telemetry()`
//! returns one — and what the encoders in [`crate::expose`] render.
//! [`TelemetrySnapshot::diff`] subtracts an earlier snapshot to attribute
//! counters, histogram buckets and spans to a phase, which is how a
//! caller gets per-request numbers out of cumulative process metrics.

use crate::histogram::HistogramSnapshot;
use crate::registry::Labels;
use crate::span::{SpanId, SpanRecord};

/// The value of one metric series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter value.
    Counter(u64),
    /// Instantaneous gauge value (always finite).
    Gauge(f64),
    /// Full bucket state of a histogram.
    Histogram(HistogramSnapshot),
}

/// One metric series: name, help text, sorted labels, and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Prometheus-charset metric name.
    pub name: String,
    /// Help text emitted as `# HELP`.
    pub help: String,
    /// Sorted `key=value` label pairs.
    pub labels: Labels,
    /// The sampled value.
    pub value: MetricValue,
}

/// A point-in-time copy of a [`crate::Telemetry`] bundle: all metric
/// series plus the span ring. Plain data — safe to hold, diff, and encode
/// long after the source has moved on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// All metric series, sorted by `(name, labels)`.
    pub samples: Vec<MetricSample>,
    /// Recorded spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring before this snapshot was taken.
    pub spans_dropped: u64,
}

impl TelemetrySnapshot {
    /// `true` when the snapshot carries no metrics and no spans (the
    /// shape returned for disabled telemetry).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() && self.spans.is_empty()
    }

    /// Finds a series by name and labels (labels in any order).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        let mut wanted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        wanted.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == wanted)
    }

    /// Convenience: the value of a counter series, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: the value of a gauge series, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: the bucket state of a histogram series, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Appends a pre-built histogram sample — the bridge for foreign
    /// bucket sources (e.g. the pool's queue-wait buckets) that are not
    /// registry-backed. Keeps the sample list sorted.
    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: HistogramSnapshot,
    ) {
        let mut labels: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        self.samples.push(MetricSample {
            name: crate::registry::sanitise_name(name),
            help: help.to_string(),
            labels,
            value: MetricValue::Histogram(histogram),
        });
        self.samples
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// The difference `self - earlier`, attributing activity to the window
    /// between the two snapshots:
    ///
    /// - counters subtract (saturating);
    /// - histograms subtract bucket-wise via
    ///   [`HistogramSnapshot::delta_since`];
    /// - gauges keep *this* snapshot's value (an instantaneous reading has
    ///   no meaningful difference);
    /// - series absent from `earlier` are kept as-is;
    /// - spans are those recorded after `earlier` was taken (ids are
    ///   monotonic per recorder, so "after" means a larger id).
    pub fn diff(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let samples = self
            .samples
            .iter()
            .map(|sample| {
                let before = earlier
                    .samples
                    .iter()
                    .find(|s| s.name == sample.name && s.labels == sample.labels);
                let value = match (&sample.value, before.map(|s| &s.value)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(now.delta_since(then))
                    }
                    (value, _) => value.clone(),
                };
                MetricSample {
                    name: sample.name.clone(),
                    help: sample.help.clone(),
                    labels: sample.labels.clone(),
                    value,
                }
            })
            .collect();
        let cutoff: SpanId = earlier.spans.iter().map(|s| s.id).max().unwrap_or(0);
        TelemetrySnapshot {
            samples,
            spans: self
                .spans
                .iter()
                .filter(|s| s.id > cutoff)
                .cloned()
                .collect(),
            spans_dropped: self.spans_dropped.saturating_sub(earlier.spans_dropped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::SpanRecorder;

    fn sample_snapshot() -> (Registry, SpanRecorder) {
        let registry = Registry::new();
        registry.counter("req_total", "requests", &[("kind", "macro")]);
        registry.gauge("active", "active jobs", &[]);
        registry.histogram_with_bounds("lat_seconds", "latency", &[], &[1.0, 2.0]);
        (registry, SpanRecorder::new(8))
    }

    fn snap(registry: &Registry, spans: &SpanRecorder) -> TelemetrySnapshot {
        TelemetrySnapshot {
            samples: registry.snapshot(),
            spans: spans.snapshot(),
            spans_dropped: spans.dropped(),
        }
    }

    #[test]
    fn find_and_typed_accessors_work() {
        let (registry, spans) = sample_snapshot();
        registry
            .counter("req_total", "requests", &[("kind", "macro")])
            .add(3);
        registry.gauge("active", "", &[]).set(2.0);
        registry
            .histogram_with_bounds("lat_seconds", "", &[], &[1.0, 2.0])
            .observe(0.5);
        let snapshot = snap(&registry, &spans);
        assert_eq!(snapshot.counter("req_total", &[("kind", "macro")]), Some(3));
        assert_eq!(snapshot.gauge("active", &[]), Some(2.0));
        assert_eq!(snapshot.histogram("lat_seconds", &[]).unwrap().count, 1);
        assert_eq!(snapshot.counter("missing", &[]), None);
        assert_eq!(snapshot.counter("active", &[]), None); // wrong type
    }

    #[test]
    fn diff_subtracts_counters_and_histograms_keeps_gauges() {
        let (registry, spans) = sample_snapshot();
        let counter = registry.counter("req_total", "requests", &[("kind", "macro")]);
        let gauge = registry.gauge("active", "", &[]);
        let hist = registry.histogram_with_bounds("lat_seconds", "", &[], &[1.0, 2.0]);
        counter.add(2);
        gauge.set(5.0);
        hist.observe(0.5);
        drop(spans.span("before"));
        let earlier = snap(&registry, &spans);

        counter.add(3);
        gauge.set(1.0);
        hist.observe(1.5);
        drop(spans.span("after"));
        let later = snap(&registry, &spans);

        let delta = later.diff(&earlier);
        assert_eq!(delta.counter("req_total", &[("kind", "macro")]), Some(3));
        assert_eq!(delta.gauge("active", &[]), Some(1.0));
        let h = delta.histogram("lat_seconds", &[]).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.counts, vec![0, 1, 0]);
        assert_eq!(delta.spans.len(), 1);
        assert_eq!(delta.spans[0].name, "after");
    }

    #[test]
    fn diff_keeps_series_missing_from_earlier() {
        let (registry, spans) = sample_snapshot();
        let earlier = snap(&registry, &spans);
        registry.counter("new_total", "", &[]).add(7);
        let later = snap(&registry, &spans);
        let delta = later.diff(&earlier);
        assert_eq!(delta.counter("new_total", &[]), Some(7));
    }

    #[test]
    fn push_histogram_keeps_samples_sorted() {
        let (registry, spans) = sample_snapshot();
        let mut snapshot = snap(&registry, &spans);
        snapshot.push_histogram(
            "aaa_first",
            "bridged",
            &[],
            HistogramSnapshot::from_parts(vec![1.0], vec![1, 0], 0.5, 1),
        );
        assert_eq!(snapshot.samples[0].name, "aaa_first");
        assert!(snapshot.histogram("aaa_first", &[]).is_some());
    }
}
