//! Cooperative cancellation for long-running optimiser loops.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the party
//! that wants to stop a run (a service scheduler, a CLI signal handler)
//! and the loop doing the work.  The loop polls [`CancelToken::status`] at
//! its natural yield points — the NSGA-II generation boundary exposed by
//! [`crate::Nsga2::run_with_observer`] — and winds down cleanly when the
//! token reports [`CancelReason::Cancelled`] (someone called
//! [`CancelToken::cancel`]) or [`CancelReason::DeadlineExceeded`] (the
//! optional deadline fixed at token creation has passed).
//!
//! Cancellation is strictly *cooperative*: nothing is interrupted
//! mid-generation, so every side effect the run performed before stopping
//! (cache fills, archived genomes, statistics) is identical to the same
//! prefix of an uninterrupted run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] asked the work to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The deadline fixed at token creation has passed.
    DeadlineExceeded,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle polled at generation boundaries.
///
/// All clones share one flag: cancelling any clone cancels them all.
/// An explicit [`CancelToken::cancel`] takes precedence over deadline
/// expiry when both hold, so a caller that cancels a job gets back
/// [`CancelReason::Cancelled`] even if the deadline also lapsed.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// Creates a token with no deadline: it only trips when
    /// [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// Creates a token that additionally trips once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Creates a token whose deadline is `budget` from now.
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Requests cancellation.  Idempotent; takes effect at the next poll.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Returns `Some(reason)` once the work should stop, `None` while it
    /// may keep running.
    pub fn status(&self) -> Option<CancelReason> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Some(CancelReason::Cancelled);
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// Shorthand for `self.status().is_some()`.
    pub fn is_triggered(&self) -> bool {
        self.status().is_some()
    }

    /// The deadline this token was created with, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_quiet() {
        let token = CancelToken::new();
        assert_eq!(token.status(), None);
        assert!(!token.is_triggered());
        assert_eq!(token.deadline(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones_and_idempotent() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        clone.cancel();
        assert_eq!(token.status(), Some(CancelReason::Cancelled));
        assert_eq!(clone.status(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.status(), Some(CancelReason::DeadlineExceeded));
        let far = CancelToken::with_budget(Duration::from_secs(3600));
        assert_eq!(far.status(), None);
        assert!(far.deadline().is_some());
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        token.cancel();
        assert_eq!(token.status(), Some(CancelReason::Cancelled));
    }
}
