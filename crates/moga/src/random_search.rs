//! Random-search baseline.
//!
//! The ablation benchmarks compare NSGA-II against uniform random sampling
//! with the same evaluation budget, to quantify how much the genetic search
//! actually contributes to Pareto-front quality.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::archive::ParetoArchive;
use crate::individual::Individual;
use crate::operators::random_genome;
use crate::problem::Problem;

/// Evaluates `budget` uniform random genomes and returns the feasible,
/// non-dominated subset as an archive of individuals.
///
/// The whole budget is sampled first and scored through
/// [`Problem::evaluate_batch`] in population-sized chunks, so problems with
/// a parallel batch path parallelise the baseline too.  Sampling never
/// interleaves with evaluation, so results are bit-identical to the
/// historical one-at-a-time loop and deterministic for a fixed `seed`.
pub fn random_search<P: Problem>(
    problem: &P,
    budget: usize,
    seed: u64,
) -> ParetoArchive<Individual> {
    /// Chunk size of one batch call: large enough to amortise thread
    /// fan-out, small enough to keep peak memory bounded for huge budgets.
    const BATCH: usize = 1024;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut archive = ParetoArchive::new();
    let mut remaining = budget;
    while remaining > 0 {
        let chunk = remaining.min(BATCH);
        remaining -= chunk;
        let genomes: Vec<Vec<f64>> = (0..chunk)
            .map(|_| random_genome(&mut rng, problem.num_variables()))
            .collect();
        let evals = problem.evaluate_batch(&genomes);
        assert_eq!(
            evals.len(),
            genomes.len(),
            "evaluate_batch must return one evaluation per genome"
        );
        for (genes, eval) in genomes.into_iter().zip(evals) {
            if !eval.is_feasible() {
                continue;
            }
            let objectives = eval.objectives.clone();
            archive.insert(objectives, Individual::new(genes, eval));
        }
    }
    archive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::problem::Evaluation;

    struct Schaffer;

    impl Problem for Schaffer {
        fn num_variables(&self) -> usize {
            1
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            let x = genes[0] * 4.0 - 2.0;
            Evaluation::unconstrained(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
    }

    struct AlwaysInfeasible;

    impl Problem for AlwaysInfeasible {
        fn num_variables(&self) -> usize {
            1
        }
        fn num_objectives(&self) -> usize {
            1
        }
        fn evaluate(&self, _genes: &[f64]) -> Evaluation {
            Evaluation::new(vec![1.0], 1.0)
        }
    }

    #[test]
    fn random_search_finds_a_non_empty_front() {
        let archive = random_search(&Schaffer, 500, 1);
        assert!(!archive.is_empty());
        // All archived points must be mutually non-dominated.
        let objs = archive.objectives();
        for (i, a) in objs.iter().enumerate() {
            for (j, b) in objs.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a, b) || !dominates(b, a));
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_search(&Schaffer, 200, 7).objectives();
        let b = random_search(&Schaffer, 200, 7).objectives();
        assert_eq!(a, b);
    }

    #[test]
    fn infeasible_problems_yield_empty_archive() {
        let archive = random_search(&AlwaysInfeasible, 100, 3);
        assert!(archive.is_empty());
    }
}
