//! Hypervolume indicators.
//!
//! Hypervolume (the measure of objective space dominated by a front, bounded
//! by a reference point) is the standard scalar quality indicator for
//! multi-objective optimisers.  The ablation benchmarks use it to compare
//! NSGA-II against exhaustive enumeration and random search.
//!
//! * [`hypervolume_2d`] — exact sweep-line computation for bi-objective
//!   fronts.
//! * [`hypervolume_monte_carlo`] — seeded Monte-Carlo estimate for any
//!   number of objectives (used for the 4-objective ACIM problem).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dominance::dominates;

/// Exact hypervolume of a bi-objective front with respect to a reference
/// point (minimisation).  Points that do not dominate the reference point
/// contribute nothing.
///
/// # Panics
///
/// Panics if any point or the reference point does not have exactly two
/// objectives.
pub fn hypervolume_2d(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    assert_eq!(reference.len(), 2, "reference point must be 2-D");
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .map(|p| {
            assert_eq!(p.len(), 2, "front points must be 2-D");
            (p[0], p[1])
        })
        .filter(|&(a, b)| a < reference[0] && b < reference[1])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by the first objective ascending; sweep and accumulate boxes.
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("objectives must not be NaN"));
    let mut volume = 0.0;
    let mut best_f2 = reference[1];
    for (f1, f2) in pts {
        if f2 < best_f2 {
            volume += (reference[0] - f1) * (best_f2 - f2);
            best_f2 = f2;
        }
    }
    volume
}

/// Monte-Carlo hypervolume estimate for fronts with any number of
/// objectives.  `samples` uniform points are drawn in the axis-aligned box
/// `[ideal, reference]` (where `ideal` is the component-wise minimum of the
/// front); the estimate is the dominated fraction times the box volume.
///
/// The estimate is deterministic for a fixed `seed`.
///
/// # Panics
///
/// Panics if the front is empty, if dimensions disagree, or if `samples`
/// is zero.
pub fn hypervolume_monte_carlo(
    front: &[Vec<f64>],
    reference: &[f64],
    samples: usize,
    seed: u64,
) -> f64 {
    assert!(!front.is_empty(), "front must not be empty");
    assert!(samples > 0, "sample count must be positive");
    let dim = reference.len();
    for p in front {
        assert_eq!(p.len(), dim, "front point dimension mismatch");
    }
    // Ideal point: component-wise minimum, clipped to the reference box.
    let mut ideal = vec![f64::INFINITY; dim];
    for p in front {
        for (i, &v) in p.iter().enumerate() {
            ideal[i] = ideal[i].min(v);
        }
    }
    let mut box_volume = 1.0;
    for i in 0..dim {
        let span = reference[i] - ideal[i];
        if span <= 0.0 {
            return 0.0;
        }
        box_volume *= span;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dominated = 0usize;
    let mut sample = vec![0.0; dim];
    for _ in 0..samples {
        for i in 0..dim {
            sample[i] = ideal[i] + rng.gen::<f64>() * (reference[i] - ideal[i]);
        }
        if front.iter().any(|p| dominates(p, &sample) || p == &sample) {
            dominated += 1;
        }
    }
    box_volume * dominated as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_2d_volume_is_a_box() {
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn staircase_2d_volume() {
        // Points (1,2) and (2,1) against reference (3,3):
        // union of boxes = 2*1 + 1*2 - overlap 1*1 = 3.
        let hv = hypervolume_2d(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_do_not_add_volume() {
        let lone = hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let with_dominated = hypervolume_2d(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
        assert!((lone - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn points_outside_reference_contribute_nothing() {
        let hv = hypervolume_2d(&[vec![4.0, 4.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn larger_front_has_larger_volume() {
        let small = hypervolume_2d(&[vec![2.0, 2.0]], &[4.0, 4.0]);
        let large = hypervolume_2d(
            &[vec![2.0, 2.0], vec![1.0, 3.5], vec![3.5, 1.0]],
            &[4.0, 4.0],
        );
        assert!(large > small);
    }

    #[test]
    fn monte_carlo_agrees_with_exact_2d() {
        let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let reference = vec![3.0, 3.0];
        let exact = hypervolume_2d(&front, &reference);
        let estimate = hypervolume_monte_carlo(&front, &reference, 200_000, 99);
        assert!(
            (exact - estimate).abs() / exact < 0.02,
            "exact {exact} vs estimate {estimate}"
        );
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let front = vec![vec![0.2, 0.8, 0.5], vec![0.8, 0.2, 0.5]];
        let reference = vec![1.0, 1.0, 1.0];
        let a = hypervolume_monte_carlo(&front, &reference, 10_000, 5);
        let b = hypervolume_monte_carlo(&front, &reference, 10_000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_reference_gives_zero() {
        let front = vec![vec![1.0, 1.0]];
        assert_eq!(hypervolume_monte_carlo(&front, &[1.0, 1.0], 100, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn monte_carlo_rejects_empty_front() {
        let _ = hypervolume_monte_carlo(&[], &[1.0, 1.0], 100, 1);
    }
}
