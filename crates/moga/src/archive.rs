//! Unbounded Pareto archive.
//!
//! The EasyACIM design-space explorer keeps every non-dominated (spec,
//! metrics) pair it has ever evaluated, so that the user-distillation step
//! can filter a rich frontier rather than only the final NSGA-II population.

use crate::dominance::dominates;

/// An entry of the archive: an objective vector plus an arbitrary payload
/// (for EasyACIM the payload is the decoded design point).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry<T> {
    /// Objective values (all minimised).
    pub objectives: Vec<f64>,
    /// User payload associated with the objectives.
    pub payload: T,
}

/// An unbounded archive of mutually non-dominated entries.
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive<T> {
    entries: Vec<ArchiveEntry<T>>,
}

impl<T> ParetoArchive<T> {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Attempts to insert a candidate.  Returns `true` when the candidate is
    /// non-dominated (and therefore now part of the archive); dominated
    /// candidates are rejected, and any existing entries dominated by the
    /// candidate are removed.
    ///
    /// Duplicates (identical objective vectors) are rejected to keep the
    /// archive minimal.
    pub fn insert(&mut self, objectives: impl Into<Vec<f64>>, payload: T) -> bool {
        let objectives = objectives.into();
        for entry in &self.entries {
            if dominates(&entry.objectives, &objectives) || entry.objectives == objectives {
                return false;
            }
        }
        self.entries
            .retain(|e| !dominates(&objectives, &e.objectives));
        self.entries.push(ArchiveEntry {
            objectives,
            payload,
        });
        true
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the archived entries.
    pub fn iter(&self) -> impl Iterator<Item = &ArchiveEntry<T>> {
        self.entries.iter()
    }

    /// Consumes the archive and returns its entries.
    pub fn into_entries(self) -> Vec<ArchiveEntry<T>> {
        self.entries
    }

    /// Returns the archived objective vectors.
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.entries.iter().map(|e| e.objectives.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_only_non_dominated() {
        let mut archive = ParetoArchive::new();
        assert!(archive.insert(vec![2.0, 2.0], "a"));
        assert!(archive.insert(vec![1.0, 3.0], "b"));
        // Dominated by "a".
        assert!(!archive.insert(vec![3.0, 3.0], "c"));
        assert_eq!(archive.len(), 2);
        // Dominates "a": "a" must be evicted.
        assert!(archive.insert(vec![1.5, 1.5], "d"));
        assert_eq!(archive.len(), 2);
        let payloads: Vec<&str> = archive.iter().map(|e| e.payload).collect();
        assert!(payloads.contains(&"b"));
        assert!(payloads.contains(&"d"));
        assert!(!payloads.contains(&"a"));
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut archive = ParetoArchive::new();
        assert!(archive.insert(vec![1.0, 1.0], 0));
        assert!(!archive.insert(vec![1.0, 1.0], 1));
        assert_eq!(archive.len(), 1);
    }

    #[test]
    fn archive_contents_are_mutually_non_dominated() {
        let mut archive = ParetoArchive::new();
        // Insert a grid of points; the archive must end up holding only the
        // non-dominated "staircase".
        for i in 0..10 {
            for j in 0..10 {
                let _ = archive.insert(vec![f64::from(i), f64::from(j)], (i, j));
            }
        }
        assert_eq!(archive.len(), 1, "only (0, 0) is non-dominated in a grid");
        let objs = archive.objectives();
        assert_eq!(objs[0], vec![0.0, 0.0]);
    }

    #[test]
    fn staircase_points_all_survive() {
        let mut archive = ParetoArchive::new();
        for i in 0..8 {
            let x = f64::from(i);
            assert!(archive.insert(vec![x, 7.0 - x], i));
        }
        assert_eq!(archive.len(), 8);
    }

    #[test]
    fn into_entries_preserves_payloads() {
        let mut archive = ParetoArchive::new();
        archive.insert(vec![1.0, 2.0], "x".to_string());
        archive.insert(vec![2.0, 1.0], "y".to_string());
        let entries = archive.into_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.payload == "x"));
    }
}
