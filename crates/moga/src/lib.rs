//! # acim-moga
//!
//! A self-contained multi-objective genetic algorithm (MOGA) library built
//! around NSGA-II, the algorithm EasyACIM uses for its design-space explorer
//! (Section 3.2.2 of the paper).
//!
//! The crate is generic: a problem implements [`Problem`] by decoding a
//! real-coded genome in `[0, 1]^n` into its own parameter space and returning
//! objective values (all minimised) plus an aggregate constraint violation.
//! [`Nsga2`] then runs the classic loop — binary constrained-tournament
//! selection, simulated-binary crossover, polynomial mutation, fast
//! non-dominated sorting and crowding-distance truncation.
//!
//! Additional utilities:
//!
//! * [`dominance`] — Pareto-dominance tests and fast non-dominated sorting,
//! * [`archive::ParetoArchive`] — an unbounded archive of non-dominated
//!   solutions,
//! * [`hypervolume`] — exact 2-D and Monte-Carlo N-D hypervolume indicators
//!   used by the ablation benchmarks,
//! * [`random_search()`] — a random-sampling baseline for comparison,
//! * [`cached::CachedProblem`] — a memoizing problem wrapper.
//!
//! # Batch evaluation & caching
//!
//! Objective evaluation is the cost centre of every real design-space
//! exploration, so the engine funnels it through two cooperating layers:
//!
//! 1. **Population batching** — [`Nsga2`] collects each generation's
//!    offspring first and scores the whole cohort through one
//!    [`Problem::evaluate_batch`] call ([`random_search()`] does the same in
//!    chunks).  The default implementation is the serial map, so a plain
//!    [`Problem`] keeps working; a problem that overrides the batch with a
//!    parallel map parallelises the whole search (the EasyACIM design
//!    problems submit one work-stealing pool task per genome to `rayon`,
//!    so one expensive design cannot stall the rest of its cohort).  Batch implementations must preserve
//!    input order and be bit-identical to the serial map, which keeps
//!    seeded runs reproducible: variation never interleaves with
//!    evaluation, so the RNG stream — and therefore the Pareto front — is
//!    exactly what the historical one-genome-at-a-time loop produced.
//! 2. **Memoization** — [`CachedProblem`] wraps any problem with a cache
//!    keyed by quantized genomes, so duplicate designs (which bucketed
//!    encodings re-sample constantly) are never re-evaluated.  Its batch
//!    path forwards only the *unique misses* to the inner problem, and its
//!    [`CacheStats`] hit/miss counters surface in run reports.
//!
//! Every run reports its evaluation counters and wall-clock breakdown in
//! one [`EvalStats`] value ([`Nsga2Result::engine`]), which downstream
//! frontier sets and flow results embed unchanged.
//!
//! # Example
//!
//! ```
//! use acim_moga::{Nsga2, Nsga2Config, Problem};
//!
//! /// Minimise (x², (x-2)²) — the classic Schaffer problem.
//! struct Schaffer;
//!
//! impl Problem for Schaffer {
//!     fn num_variables(&self) -> usize { 1 }
//!     fn num_objectives(&self) -> usize { 2 }
//!     fn evaluate(&self, genes: &[f64]) -> acim_moga::Evaluation {
//!         let x = genes[0] * 4.0 - 2.0; // decode [0,1] -> [-2, 2]
//!         acim_moga::Evaluation::unconstrained(vec![x * x, (x - 2.0) * (x - 2.0)])
//!     }
//! }
//!
//! let config = Nsga2Config { population_size: 40, generations: 30, ..Default::default() };
//! let result = Nsga2::new(Schaffer, config).with_seed(7).run();
//! assert!(!result.pareto_front().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod cached;
pub mod cancel;
pub mod clock;
pub mod crowding;
pub mod dominance;
pub mod hypervolume;
pub mod individual;
pub mod nsga2;
pub mod operators;
pub mod problem;
pub mod random_search;
pub mod selection;
pub mod shared_cache;

pub use archive::ParetoArchive;
pub use cached::{CacheCounters, CacheStats, CacheStore, CachedProblem};
pub use cancel::{CancelReason, CancelToken};
pub use clock::{ClockMap, TryInsert};
pub use crowding::assign_crowding_distance;
pub use dominance::{constrained_dominates, dominates, fast_non_dominated_sort};
pub use hypervolume::{hypervolume_2d, hypervolume_monte_carlo};
pub use individual::Individual;
pub use nsga2::{EvalStats, Nsga2, Nsga2Config, Nsga2Result, PoolStats};
pub use operators::{polynomial_mutation, sbx_crossover};
pub use problem::{Evaluation, ObjVec, Problem};
pub use random_search::random_search;
pub use shared_cache::SharedCache;
