//! Crowding-distance assignment.
//!
//! NSGA-II preserves diversity inside a front by preferring individuals whose
//! neighbours (in objective space) are far away.  Boundary individuals of
//! each objective get an infinite distance so they always survive truncation.

use crate::individual::Individual;

/// Assigns the crowding distance to every individual referenced by `front`
/// (a list of indices into `population`).
///
/// The distance of an individual is the sum over objectives of the
/// normalised span between its two neighbours when the front is sorted along
/// that objective; extremes get `f64::INFINITY`.
pub fn assign_crowding_distance(population: &mut [Individual], front: &[usize]) {
    if front.is_empty() {
        return;
    }
    for &i in front {
        population[i].crowding_distance = 0.0;
    }
    if front.len() <= 2 {
        for &i in front {
            population[i].crowding_distance = f64::INFINITY;
        }
        return;
    }
    let num_objectives = population[front[0]].objectives.len();
    let mut order: Vec<usize> = front.to_vec();
    for m in 0..num_objectives {
        order.sort_by(|&a, &b| {
            population[a].objectives[m]
                .partial_cmp(&population[b].objectives[m])
                .expect("objective values must not be NaN")
        });
        let min = population[order[0]].objectives[m];
        let max = population[*order.last().expect("front not empty")].objectives[m];
        let span = max - min;
        population[order[0]].crowding_distance = f64::INFINITY;
        population[*order.last().expect("front not empty")].crowding_distance = f64::INFINITY;
        if span <= f64::EPSILON {
            // Degenerate objective: every solution has the same value, no
            // contribution to the distance.
            continue;
        }
        for w in 1..order.len() - 1 {
            let prev = population[order[w - 1]].objectives[m];
            let next = population[order[w + 1]].objectives[m];
            let idx = order[w];
            if population[idx].crowding_distance.is_finite() {
                population[idx].crowding_distance += (next - prev) / span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    fn pop_from(objs: &[(f64, f64)]) -> Vec<Individual> {
        objs.iter()
            .map(|&(a, b)| Individual::new(vec![0.0], Evaluation::unconstrained(vec![a, b])))
            .collect()
    }

    #[test]
    fn extremes_get_infinite_distance() {
        let mut pop = pop_from(&[(0.0, 4.0), (1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (4.0, 0.0)]);
        let front: Vec<usize> = (0..pop.len()).collect();
        assign_crowding_distance(&mut pop, &front);
        assert!(pop[0].crowding_distance.is_infinite());
        assert!(pop[4].crowding_distance.is_infinite());
        for ind in &pop[1..4] {
            assert!(ind.crowding_distance.is_finite());
            assert!(ind.crowding_distance > 0.0);
        }
    }

    #[test]
    fn evenly_spaced_points_have_equal_interior_distance() {
        let mut pop = pop_from(&[(0.0, 4.0), (1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (4.0, 0.0)]);
        let front: Vec<usize> = (0..pop.len()).collect();
        assign_crowding_distance(&mut pop, &front);
        let d1 = pop[1].crowding_distance;
        let d2 = pop[2].crowding_distance;
        let d3 = pop[3].crowding_distance;
        assert!((d1 - d2).abs() < 1e-12);
        assert!((d2 - d3).abs() < 1e-12);
    }

    #[test]
    fn crowded_region_scores_lower() {
        // Points 1 and 2 are close together; point 3 is isolated.
        let mut pop = pop_from(&[(0.0, 10.0), (1.0, 5.0), (1.2, 4.8), (8.0, 1.0), (10.0, 0.0)]);
        let front: Vec<usize> = (0..pop.len()).collect();
        assign_crowding_distance(&mut pop, &front);
        assert!(pop[3].crowding_distance > pop[2].crowding_distance);
    }

    #[test]
    fn tiny_fronts_are_all_infinite() {
        let mut pop = pop_from(&[(1.0, 2.0), (2.0, 1.0)]);
        let front = vec![0, 1];
        assign_crowding_distance(&mut pop, &front);
        assert!(pop[0].crowding_distance.is_infinite());
        assert!(pop[1].crowding_distance.is_infinite());
    }

    #[test]
    fn degenerate_objective_does_not_produce_nan() {
        let mut pop = pop_from(&[(1.0, 5.0), (1.0, 3.0), (1.0, 1.0)]);
        let front = vec![0, 1, 2];
        assign_crowding_distance(&mut pop, &front);
        for ind in &pop {
            assert!(!ind.crowding_distance.is_nan());
        }
    }

    #[test]
    fn empty_front_is_a_no_op() {
        let mut pop = pop_from(&[(1.0, 2.0)]);
        assign_crowding_distance(&mut pop, &[]);
        assert_eq!(pop[0].crowding_distance, 0.0);
    }
}
