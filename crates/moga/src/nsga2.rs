//! The NSGA-II main loop.
//!
//! Evaluation is **population-batched**: every generation's offspring are
//! collected first and scored through one [`Problem::evaluate_batch`] call,
//! so problems with a parallel batch implementation (like the EasyACIM chip
//! problem) parallelise across the whole population instead of inside a
//! single evaluation.  Variation (selection, crossover, mutation) never
//! consumes randomness during evaluation, so the batched loop generates
//! exactly the genomes the historical one-at-a-time loop did — seeded runs
//! produce bit-identical Pareto fronts either way.

use std::ops::ControlFlow;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cached::CacheStats;
use crate::crowding::assign_crowding_distance;
use crate::dominance::fast_non_dominated_sort;
use crate::individual::Individual;
use crate::operators::{polynomial_mutation, random_genome, sbx_crossover};
use crate::problem::Problem;
use crate::selection::binary_tournament;

/// Configuration of an NSGA-II run.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size (must be even and ≥ 4).
    pub population_size: usize,
    /// Number of generations.
    pub generations: usize,
    /// SBX crossover probability per gene.
    pub crossover_probability: f64,
    /// SBX distribution index.
    pub crossover_eta: f64,
    /// Per-gene mutation probability.  `None` means `1 / num_variables`.
    pub mutation_probability: Option<f64>,
    /// Polynomial-mutation distribution index.
    pub mutation_eta: f64,
    /// Genomes injected into the initial population (the **warm-start**
    /// path): up to `population_size` of them are used verbatim (genes
    /// clamped to `[0, 1]`), the remainder is filled with uniform random
    /// genomes exactly as a cold run would generate them.  Empty (the
    /// default) keeps the historical all-random initial population and a
    /// bit-identical RNG stream, so cold runs are unaffected.
    pub initial_population: Vec<Vec<f64>>,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self {
            population_size: 100,
            generations: 100,
            crossover_probability: 0.9,
            crossover_eta: 15.0,
            mutation_probability: None,
            mutation_eta: 20.0,
            initial_population: Vec::new(),
        }
    }
}

/// Work-stealing pool activity attributed to one optimiser run: how many
/// leaf tasks the pool executed, how many were claimed by stealing, and
/// how the tasks spread across helper slots.  Filled in by callers that
/// can observe the pool (the `acim-dse` explorers diff
/// `rayon::pool_metrics()` snapshots around the run); stays at the zero
/// default for problems that never touch a pool.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Leaf tasks executed during the run, summed over helper slots.
    pub tasks_executed: u64,
    /// Tasks claimed by stealing from another helper's deque.
    pub steals: u64,
    /// Per-slot task counts (slot 0 is the submitting thread).
    pub tasks_per_worker: Vec<u64>,
}

impl PoolStats {
    /// Fraction of tasks that were claimed by stealing, in `[0, 1]`
    /// (`0.0` when no tasks ran).
    pub fn steal_rate(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.steals as f64 / self.tasks_executed as f64
        }
    }
}

impl std::fmt::Display for PoolStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pool tasks ({} stolen) across {} workers",
            self.tasks_executed,
            self.steals,
            self.tasks_per_worker.len(),
        )
    }
}

/// Aggregated evaluation-engine statistics of one optimiser run: how many
/// evaluations were requested, how the cache fared, and where the
/// wall-clock went.  Downstream result types (frontier sets, flow results)
/// embed this so every layer reports the same numbers the same way.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalStats {
    /// Number of objective evaluations requested from the problem (a
    /// memoizing problem like [`crate::CachedProblem`] may answer some of
    /// them from its cache; see [`EvalStats::cache`]).
    pub evaluations: usize,
    /// Hit/miss counters of the evaluation cache ([`CacheStats::default`]
    /// when no cache was involved).
    pub cache: CacheStats,
    /// Hit/miss counters of the **macro-metric reuse layer** — the cache
    /// of per-macro `DesignMetrics` consulted below the genome-level
    /// evaluation cache (see `acim_chip::MacroMetricsCache`).  Stays at
    /// the zero default for problems without a macro-metric cache.
    pub macro_cache: CacheStats,
    /// Wall-clock seconds spent inside [`Problem::evaluate_batch`].
    pub eval_seconds: f64,
    /// Wall-clock seconds per generation (variation + evaluation +
    /// environmental selection), one entry per generation.
    pub generation_seconds: Vec<f64>,
    /// Work-stealing pool activity attributed to the run
    /// ([`PoolStats::default`] when the problem never used a pool or the
    /// caller could not observe one).
    pub pool: PoolStats,
}

impl EvalStats {
    /// Objective evaluations per wall-clock second of evaluation time.
    ///
    /// Guaranteed finite: a run whose evaluation time is below the timer
    /// resolution (a `--quick` run answered entirely from a warm cache)
    /// reports `0.0` instead of leaking `inf`/`NaN` into reports
    /// (`tests/service.rs` asserts a full-hit replay renders cleanly).
    pub fn evaluations_per_second(&self) -> f64 {
        if self.eval_seconds > 0.0 {
            self.evaluations as f64 / self.eval_seconds
        } else {
            0.0
        }
    }

    /// Mean wall-clock seconds per generation (`0.0` for zero generations;
    /// never `NaN`).
    pub fn mean_generation_seconds(&self) -> f64 {
        if self.generation_seconds.is_empty() {
            0.0
        } else {
            self.generation_seconds.iter().sum::<f64>() / self.generation_seconds.len() as f64
        }
    }
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Result {
    /// Final population after the last environmental selection.
    pub population: Vec<Individual>,
    /// Number of generations executed.  Equals the configured generation
    /// budget unless the observer stopped the loop early with
    /// [`ControlFlow::Break`], in which case it counts the generations
    /// that actually ran.
    pub generations: usize,
    /// Evaluation-engine statistics of the run.  The optimiser cannot see
    /// a cache, so [`EvalStats::cache`] stays at its zero default; a
    /// caller that wrapped the problem in a [`crate::CachedProblem`]
    /// fills it in from the wrapper's counters.
    pub engine: EvalStats,
}

impl Nsga2Result {
    /// Returns the feasible, non-dominated individuals of the final
    /// population (rank 0).
    pub fn pareto_front(&self) -> Vec<&Individual> {
        self.population
            .iter()
            .filter(|ind| ind.rank == 0 && ind.is_feasible())
            .collect()
    }

    /// Returns the objective vectors of the Pareto front.
    pub fn pareto_objectives(&self) -> Vec<Vec<f64>> {
        self.pareto_front()
            .into_iter()
            .map(|ind| ind.objectives.to_vec())
            .collect()
    }

    /// Number of objective evaluations requested from the problem
    /// (shorthand for [`EvalStats::evaluations`]).
    pub fn evaluations(&self) -> usize {
        self.engine.evaluations
    }
}

/// NSGA-II optimiser over a [`Problem`].
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Nsga2<P: Problem> {
    problem: P,
    config: Nsga2Config,
    seed: u64,
}

impl<P: Problem> Nsga2<P> {
    /// Creates a new optimiser with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population size is smaller than 4 or odd, if the
    /// problem has zero variables or objectives, or if a seeded initial
    /// genome does not have exactly `num_variables` genes.
    pub fn new(problem: P, config: Nsga2Config) -> Self {
        assert!(
            config.population_size >= 4 && config.population_size.is_multiple_of(2),
            "population size must be an even number >= 4"
        );
        assert!(problem.num_variables() > 0, "problem must have variables");
        assert!(problem.num_objectives() > 0, "problem must have objectives");
        for (i, genome) in config.initial_population.iter().enumerate() {
            assert_eq!(
                genome.len(),
                problem.num_variables(),
                "seeded genome {i} has {} genes, problem has {}",
                genome.len(),
                problem.num_variables()
            );
        }
        Self {
            problem,
            config,
            seed: 0xEA57_AC1B,
        }
    }

    /// Sets the RNG seed (runs are deterministic for a fixed seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration.
    pub fn config(&self) -> &Nsga2Config {
        &self.config
    }

    /// Runs the optimisation and returns the final population.
    pub fn run(&self) -> Nsga2Result {
        self.run_with_observer(|_, _| ControlFlow::Continue(()))
    }

    /// Runs the optimisation, invoking `observer(generation, population)`
    /// after every environmental selection (used for convergence studies
    /// and progress reporting).
    ///
    /// The observer's return value steers the loop: [`ControlFlow::Break`]
    /// stops the run at that generation boundary — the **cooperative
    /// cancellation** hook the service scheduler uses for
    /// `JobHandle::cancel()` and deadline expiry.  A broken run returns the
    /// population exactly as it stood after the observed generation's
    /// environmental selection, so everything executed so far (archives,
    /// cache fills, statistics) is identical to the same prefix of an
    /// uninterrupted run; [`Nsga2Result::generations`] reports how many
    /// generations actually ran.
    pub fn run_with_observer<F>(&self, mut observer: F) -> Nsga2Result
    where
        F: FnMut(usize, &[Individual]) -> ControlFlow<()>,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_var = self.problem.num_variables();
        let pop_size = self.config.population_size;
        let mutation_p = self
            .config
            .mutation_probability
            .unwrap_or(1.0 / n_var as f64);
        let mut evaluations = 0usize;
        let mut eval_seconds = 0.0f64;
        let mut generation_seconds = Vec::with_capacity(self.config.generations);

        // Evaluates a whole cohort of genomes through one batch call,
        // tracking the evaluation count and wall-clock spent.
        let evaluate_cohort = |genomes: Vec<Vec<f64>>,
                               evaluations: &mut usize,
                               eval_seconds: &mut f64|
         -> Vec<Individual> {
            let eval_start = Instant::now();
            let evals = self.problem.evaluate_batch(&genomes);
            *eval_seconds += eval_start.elapsed().as_secs_f64();
            assert_eq!(
                evals.len(),
                genomes.len(),
                "evaluate_batch must return one evaluation per genome"
            );
            *evaluations += genomes.len();
            genomes
                .into_iter()
                .zip(evals)
                .map(|(genes, eval)| Individual::new(genes, eval))
                .collect()
        };

        // Initial population: seeded genomes first (the warm-start path),
        // the remainder random.  With no seeds this is the historical
        // all-random cohort, drawn from an identical RNG stream.
        let mut genomes: Vec<Vec<f64>> = self
            .config
            .initial_population
            .iter()
            .take(pop_size)
            .map(|genome| genome.iter().map(|g| g.clamp(0.0, 1.0)).collect())
            .collect();
        while genomes.len() < pop_size {
            genomes.push(random_genome(&mut rng, n_var));
        }
        let mut population = evaluate_cohort(genomes, &mut evaluations, &mut eval_seconds);
        let fronts = fast_non_dominated_sort(&mut population);
        for front in &fronts {
            assign_crowding_distance(&mut population, front);
        }

        let mut executed_generations = 0usize;
        for generation in 0..self.config.generations {
            let generation_start = Instant::now();
            // Variation: collect the whole offspring cohort first (no
            // evaluations interleaved, so the RNG stream is identical to
            // the historical evaluate-as-you-go loop)…
            let mut offspring_genomes: Vec<Vec<f64>> = Vec::with_capacity(pop_size);
            while offspring_genomes.len() < pop_size {
                let parent_a = binary_tournament(&mut rng, &population);
                let parent_b = binary_tournament(&mut rng, &population);
                let (mut child_a, mut child_b) = sbx_crossover(
                    &mut rng,
                    &population[parent_a].genes,
                    &population[parent_b].genes,
                    self.config.crossover_eta,
                    self.config.crossover_probability,
                );
                polynomial_mutation(&mut rng, &mut child_a, self.config.mutation_eta, mutation_p);
                polynomial_mutation(&mut rng, &mut child_b, self.config.mutation_eta, mutation_p);
                for child in [child_a, child_b] {
                    if offspring_genomes.len() >= pop_size {
                        break;
                    }
                    offspring_genomes.push(child);
                }
            }
            // …then score it through one batch call.
            let mut offspring =
                evaluate_cohort(offspring_genomes, &mut evaluations, &mut eval_seconds);

            // Environmental selection over parents ∪ offspring.
            let mut combined = population;
            combined.append(&mut offspring);
            let fronts = fast_non_dominated_sort(&mut combined);
            let mut next: Vec<Individual> = Vec::with_capacity(pop_size);
            for front in &fronts {
                assign_crowding_distance(&mut combined, front);
                if next.len() + front.len() <= pop_size {
                    for &i in front {
                        next.push(combined[i].clone());
                    }
                } else {
                    let mut sorted: Vec<usize> = front.clone();
                    sorted.sort_by(|&a, &b| {
                        combined[b]
                            .crowding_distance
                            .partial_cmp(&combined[a].crowding_distance)
                            .expect("crowding distance is never NaN")
                    });
                    for &i in sorted.iter().take(pop_size - next.len()) {
                        next.push(combined[i].clone());
                    }
                    break;
                }
            }
            population = next;
            // Re-rank the trimmed population so observers and the final
            // result see consistent rank/crowding values.
            let fronts = fast_non_dominated_sort(&mut population);
            for front in &fronts {
                assign_crowding_distance(&mut population, front);
            }
            generation_seconds.push(generation_start.elapsed().as_secs_f64());
            executed_generations = generation + 1;
            if observer(generation, &population).is_break() {
                break;
            }
        }

        Nsga2Result {
            population,
            generations: executed_generations,
            engine: EvalStats {
                evaluations,
                eval_seconds,
                generation_seconds,
                ..EvalStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    /// ZDT1-like bi-objective benchmark on 5 variables.
    struct Zdt1;

    impl Problem for Zdt1 {
        fn num_variables(&self) -> usize {
            5
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            let f1 = genes[0];
            let g = 1.0 + 9.0 * genes[1..].iter().sum::<f64>() / (genes.len() - 1) as f64;
            let f2 = g * (1.0 - (f1 / g).sqrt());
            Evaluation::unconstrained(vec![f1, f2])
        }
        fn name(&self) -> &str {
            "zdt1"
        }
    }

    /// Constrained problem: minimise (x, y) subject to x + y >= 1.
    struct ConstrainedSum;

    impl Problem for ConstrainedSum {
        fn num_variables(&self) -> usize {
            2
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            let violation = (1.0 - (genes[0] + genes[1])).max(0.0);
            Evaluation::new(vec![genes[0], genes[1]], violation)
        }
    }

    fn small_config() -> Nsga2Config {
        Nsga2Config {
            population_size: 40,
            generations: 40,
            ..Default::default()
        }
    }

    #[test]
    fn converges_towards_zdt1_front() {
        let result = Nsga2::new(Zdt1, small_config()).with_seed(11).run();
        let front = result.pareto_front();
        assert!(front.len() >= 10, "front too small: {}", front.len());
        // On the true ZDT1 front, g = 1 and f2 = 1 - sqrt(f1).  Check the
        // population got reasonably close.
        let mean_gap: f64 = front
            .iter()
            .map(|ind| {
                let f1 = ind.objectives[0];
                let f2 = ind.objectives[1];
                (f2 - (1.0 - f1.sqrt())).abs()
            })
            .sum::<f64>()
            / front.len() as f64;
        assert!(mean_gap < 0.25, "mean gap to true front is {mean_gap}");
    }

    #[test]
    fn runs_are_deterministic_for_fixed_seed() {
        let a = Nsga2::new(Zdt1, small_config()).with_seed(3).run();
        let b = Nsga2::new(Zdt1, small_config()).with_seed(3).run();
        assert_eq!(a.pareto_objectives(), b.pareto_objectives());
        let c = Nsga2::new(Zdt1, small_config()).with_seed(4).run();
        assert_ne!(a.pareto_objectives(), c.pareto_objectives());
    }

    #[test]
    fn evaluation_count_matches_schedule() {
        let config = small_config();
        let expected = config.population_size * (config.generations + 1);
        let result = Nsga2::new(Zdt1, config).with_seed(5).run();
        assert_eq!(result.evaluations(), expected);
    }

    #[test]
    fn constrained_problem_yields_feasible_front() {
        let result = Nsga2::new(ConstrainedSum, small_config())
            .with_seed(7)
            .run();
        let front = result.pareto_front();
        assert!(!front.is_empty());
        for ind in &front {
            assert!(ind.is_feasible());
            // Feasible front lies on x + y = 1 (within mutation noise).
            let sum = ind.objectives[0] + ind.objectives[1];
            assert!(sum >= 1.0 - 1e-9, "infeasible point on front: sum = {sum}");
            assert!(sum < 1.2, "front did not converge to the boundary: {sum}");
        }
    }

    #[test]
    fn observer_sees_every_generation() {
        let mut seen = Vec::new();
        let result = Nsga2::new(Zdt1, small_config())
            .with_seed(9)
            .run_with_observer(|generation, pop| {
                assert_eq!(pop.len(), 40);
                seen.push(generation);
                ControlFlow::Continue(())
            });
        assert_eq!(seen.len(), 40);
        assert_eq!(seen[0], 0);
        assert_eq!(*seen.last().unwrap(), 39);
        assert_eq!(result.generations, 40);
    }

    #[test]
    fn breaking_observer_stops_at_the_generation_boundary() {
        let mut seen = Vec::new();
        let result = Nsga2::new(Zdt1, small_config())
            .with_seed(9)
            .run_with_observer(|generation, _pop| {
                seen.push(generation);
                if generation == 6 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
        // The loop stops after the observed generation completes: seven
        // generations ran (0..=6), none after the break.
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(result.generations, 7);
        assert_eq!(result.engine.generation_seconds.len(), 7);
        assert_eq!(result.population.len(), 40);
        // An interrupted run's population is the same prefix an
        // uninterrupted run passed through: compare against the full run's
        // observer snapshot at generation 6.
        let mut snapshot: Vec<Vec<f64>> = Vec::new();
        let _ = Nsga2::new(Zdt1, small_config())
            .with_seed(9)
            .run_with_observer(|generation, pop| {
                if generation == 6 {
                    snapshot = pop.iter().map(|ind| ind.objectives.to_vec()).collect();
                }
                ControlFlow::Continue(())
            });
        let broken: Vec<Vec<f64>> = result
            .population
            .iter()
            .map(|ind| ind.objectives.to_vec())
            .collect();
        assert_eq!(broken, snapshot);
    }

    #[test]
    fn empty_seed_list_is_bit_identical_to_the_historical_cold_path() {
        let cold = Nsga2::new(Zdt1, small_config()).with_seed(19).run();
        let config = Nsga2Config {
            initial_population: Vec::new(),
            ..small_config()
        };
        let explicit = Nsga2::new(Zdt1, config).with_seed(19).run();
        assert_eq!(cold.pareto_objectives(), explicit.pareto_objectives());
    }

    #[test]
    fn seeded_initial_population_is_deterministic_and_used_verbatim() {
        let seeds = vec![
            vec![0.25, 0.5, 0.5, 0.5, 0.5],
            vec![1.5, -0.25, 0.0, 0.0, 0.0],
        ];
        let config = Nsga2Config {
            initial_population: seeds,
            ..small_config()
        };
        let a = Nsga2::new(Zdt1, config.clone()).with_seed(23).run();
        let b = Nsga2::new(Zdt1, config.clone()).with_seed(23).run();
        assert_eq!(a.pareto_objectives(), b.pareto_objectives());
        // The warm run differs from the cold one (the seeds change the
        // initial cohort, hence the whole trajectory).
        let cold = Nsga2::new(Zdt1, small_config()).with_seed(23).run();
        assert_ne!(a.pareto_objectives(), cold.pareto_objectives());
        // Out-of-range seed genes were clamped, never fed to the problem
        // raw: every evaluation stays finite on ZDT1's [0, 1] domain.
        assert!(a
            .population
            .iter()
            .all(|ind| ind.objectives.iter().all(|o| o.is_finite())));
    }

    #[test]
    fn surplus_seeds_are_truncated_to_the_population() {
        let seeds: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i) / 100.0; 5]).collect();
        let config = Nsga2Config {
            population_size: 8,
            generations: 2,
            initial_population: seeds,
            ..Default::default()
        };
        let result = Nsga2::new(Zdt1, config).with_seed(29).run();
        assert_eq!(result.population.len(), 8);
    }

    #[test]
    #[should_panic(expected = "seeded genome")]
    fn wrong_length_seed_genome_is_rejected() {
        let config = Nsga2Config {
            initial_population: vec![vec![0.5; 3]],
            ..small_config()
        };
        let _ = Nsga2::new(Zdt1, config);
    }

    #[test]
    fn pool_stats_render_and_rate() {
        let stats = PoolStats {
            tasks_executed: 8,
            steals: 2,
            tasks_per_worker: vec![5, 3],
        };
        assert!((stats.steal_rate() - 0.25).abs() < 1e-12);
        assert_eq!(PoolStats::default().steal_rate(), 0.0);
        let line = stats.to_string();
        assert!(line.contains("8 pool tasks"));
        assert!(line.contains("2 stolen"));
        assert!(line.contains("2 workers"));
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_population_size_is_rejected() {
        let config = Nsga2Config {
            population_size: 11,
            ..Default::default()
        };
        let _ = Nsga2::new(Zdt1, config);
    }

    #[test]
    fn final_population_has_exact_size() {
        let result = Nsga2::new(Zdt1, small_config()).with_seed(13).run();
        assert_eq!(result.population.len(), 40);
    }

    /// Records the size of every batch the optimiser requests.
    struct BatchProbe {
        batch_sizes: std::sync::Mutex<Vec<usize>>,
    }

    impl Problem for BatchProbe {
        fn num_variables(&self) -> usize {
            2
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            Evaluation::unconstrained(vec![genes[0], genes[1]])
        }
        fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
            self.batch_sizes.lock().unwrap().push(genomes.len());
            genomes.iter().map(|g| self.evaluate(g)).collect()
        }
    }

    #[test]
    fn every_generation_is_one_population_sized_batch() {
        let probe = BatchProbe {
            batch_sizes: std::sync::Mutex::new(Vec::new()),
        };
        let config = small_config();
        let _ = Nsga2::new(&probe, config.clone()).with_seed(21).run();
        let sizes = probe.batch_sizes.lock().unwrap();
        // One batch for the initial population + one per generation.
        assert_eq!(sizes.len(), config.generations + 1);
        assert!(sizes.iter().all(|&s| s == config.population_size));
    }

    #[test]
    fn run_reports_timing_stats() {
        let result = Nsga2::new(Zdt1, small_config()).with_seed(17).run();
        let engine = &result.engine;
        assert_eq!(engine.generation_seconds.len(), 40);
        assert!(engine.generation_seconds.iter().all(|&s| s >= 0.0));
        assert!(engine.eval_seconds >= 0.0);
        // The optimiser itself never sees a cache.
        assert_eq!(engine.cache, CacheStats::default());
        assert_eq!(engine.evaluations, result.evaluations());
        assert!(engine.evaluations_per_second() >= 0.0);
        assert!(engine.mean_generation_seconds() >= 0.0);
        assert_eq!(EvalStats::default().evaluations_per_second(), 0.0);
        assert_eq!(EvalStats::default().mean_generation_seconds(), 0.0);
    }
}
