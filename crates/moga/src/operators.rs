//! Variation operators: simulated-binary crossover (SBX) and polynomial
//! mutation, both operating on real-coded genes clamped to `[0, 1]`.

use rand::Rng;

/// Clamps a gene to the unit interval.
fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Simulated-binary crossover (Deb & Agrawal, 1995).
///
/// Produces two children from two parents.  `eta` is the distribution index:
/// larger values keep children closer to their parents (typical range 10–30).
/// `crossover_probability` is applied per gene pair.
///
/// # Panics
///
/// Panics if the parents have different lengths.
pub fn sbx_crossover<R: Rng + ?Sized>(
    rng: &mut R,
    parent_a: &[f64],
    parent_b: &[f64],
    eta: f64,
    crossover_probability: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        parent_a.len(),
        parent_b.len(),
        "parents must have the same number of genes"
    );
    let mut child_a = parent_a.to_vec();
    let mut child_b = parent_b.to_vec();
    for i in 0..parent_a.len() {
        if rng.gen::<f64>() > crossover_probability {
            continue;
        }
        let (x1, x2) = (parent_a[i], parent_b[i]);
        if (x1 - x2).abs() < 1e-14 {
            continue;
        }
        let u: f64 = rng.gen();
        let beta = if u <= 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0))
        } else {
            (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
        };
        let c1 = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
        let c2 = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
        child_a[i] = clamp01(c1);
        child_b[i] = clamp01(c2);
    }
    (child_a, child_b)
}

/// Polynomial mutation (Deb).
///
/// Each gene mutates with probability `mutation_probability`; `eta` is the
/// distribution index (typical 10–50, larger = smaller perturbations).
pub fn polynomial_mutation<R: Rng + ?Sized>(
    rng: &mut R,
    genes: &mut [f64],
    eta: f64,
    mutation_probability: f64,
) {
    for gene in genes.iter_mut() {
        if rng.gen::<f64>() > mutation_probability {
            continue;
        }
        let x = *gene;
        let u: f64 = rng.gen();
        let delta = if u < 0.5 {
            let b = 2.0 * u + (1.0 - 2.0 * u) * (1.0 - x).powf(eta + 1.0);
            b.powf(1.0 / (eta + 1.0)) - 1.0
        } else {
            let b = 2.0 * (1.0 - u) + 2.0 * (u - 0.5) * x.powf(eta + 1.0);
            1.0 - b.powf(1.0 / (eta + 1.0))
        };
        *gene = clamp01(x + delta);
    }
}

/// Uniform random genome in `[0, 1]^n`.
pub fn random_genome<R: Rng + ?Sized>(rng: &mut R, num_variables: usize) -> Vec<f64> {
    (0..num_variables).map(|_| rng.gen::<f64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn sbx_children_stay_in_unit_interval() {
        let mut rng = rng();
        let a = vec![0.05, 0.5, 0.95];
        let b = vec![0.95, 0.5, 0.05];
        for _ in 0..200 {
            let (c1, c2) = sbx_crossover(&mut rng, &a, &b, 15.0, 1.0);
            for g in c1.iter().chain(c2.iter()) {
                assert!((0.0..=1.0).contains(g), "gene {g} escaped [0,1]");
            }
        }
    }

    #[test]
    fn sbx_preserves_mean_of_parents_per_gene() {
        // SBX is mean-preserving before clamping; for interior parents the
        // clamp rarely triggers, so child means stay close to parent means.
        let mut rng = rng();
        let a = vec![0.3];
        let b = vec![0.7];
        let mut mean_sum = 0.0;
        let trials = 3000;
        for _ in 0..trials {
            let (c1, c2) = sbx_crossover(&mut rng, &a, &b, 20.0, 1.0);
            mean_sum += (c1[0] + c2[0]) / 2.0;
        }
        let grand_mean = mean_sum / f64::from(trials);
        assert!(
            (grand_mean - 0.5).abs() < 0.01,
            "mean drifted to {grand_mean}"
        );
    }

    #[test]
    fn sbx_with_zero_probability_copies_parents() {
        let mut rng = rng();
        let a = vec![0.2, 0.4];
        let b = vec![0.8, 0.6];
        let (c1, c2) = sbx_crossover(&mut rng, &a, &b, 15.0, 0.0);
        assert_eq!(c1, a);
        assert_eq!(c2, b);
    }

    #[test]
    #[should_panic(expected = "same number of genes")]
    fn sbx_rejects_length_mismatch() {
        let mut rng = rng();
        let _ = sbx_crossover(&mut rng, &[0.5], &[0.5, 0.5], 15.0, 1.0);
    }

    #[test]
    fn mutation_keeps_genes_in_unit_interval() {
        let mut rng = rng();
        for _ in 0..200 {
            let mut genes = vec![0.0, 0.5, 1.0];
            polynomial_mutation(&mut rng, &mut genes, 20.0, 1.0);
            for g in &genes {
                assert!((0.0..=1.0).contains(g));
            }
        }
    }

    #[test]
    fn mutation_with_zero_probability_is_identity() {
        let mut rng = rng();
        let mut genes = vec![0.1, 0.9];
        polynomial_mutation(&mut rng, &mut genes, 20.0, 0.0);
        assert_eq!(genes, vec![0.1, 0.9]);
    }

    #[test]
    fn mutation_actually_perturbs_with_probability_one() {
        let mut rng = rng();
        let original = vec![0.5; 16];
        let mut genes = original.clone();
        polynomial_mutation(&mut rng, &mut genes, 20.0, 1.0);
        assert_ne!(genes, original);
    }

    #[test]
    fn random_genome_has_requested_length_and_range() {
        let mut rng = rng();
        let g = random_genome(&mut rng, 10);
        assert_eq!(g.len(), 10);
        assert!(g.iter().all(|x| (0.0..=1.0).contains(x)));
    }
}
