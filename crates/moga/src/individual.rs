//! Population member representation.

use crate::problem::{Evaluation, ObjVec};

/// One member of an NSGA-II population: a genome plus its evaluation and the
/// bookkeeping used by non-dominated sorting (rank) and diversity
/// preservation (crowding distance).
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Real-coded genome, every gene in `[0, 1]`.
    pub genes: Vec<f64>,
    /// Objective values (all minimised), stored inline for the common
    /// arities (see [`crate::problem::INLINE_OBJECTIVES`]).
    pub objectives: ObjVec,
    /// Aggregate constraint violation (`0.0` = feasible).
    pub constraint_violation: f64,
    /// Non-domination rank (`0` = first/best front).  Assigned by
    /// [`crate::dominance::fast_non_dominated_sort`].
    pub rank: usize,
    /// Crowding distance within the individual's front.  Assigned by
    /// [`crate::crowding::assign_crowding_distance`].
    pub crowding_distance: f64,
}

impl Individual {
    /// Builds an individual from a genome and its evaluation.
    pub fn new(genes: Vec<f64>, evaluation: Evaluation) -> Self {
        Self {
            genes,
            objectives: evaluation.objectives,
            constraint_violation: evaluation.constraint_violation,
            rank: usize::MAX,
            crowding_distance: 0.0,
        }
    }

    /// Returns `true` when the individual satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.constraint_violation == 0.0
    }

    /// Crowded-comparison operator of NSGA-II: prefer the lower rank, break
    /// ties with the larger crowding distance.  Returns `true` when `self`
    /// is preferred over `other`.
    pub fn crowded_compare(&self, other: &Self) -> bool {
        if self.rank != other.rank {
            self.rank < other.rank
        } else {
            self.crowding_distance > other.crowding_distance
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn individual(rank: usize, crowding: f64) -> Individual {
        let mut ind = Individual::new(vec![0.5], Evaluation::unconstrained(vec![1.0, 2.0]));
        ind.rank = rank;
        ind.crowding_distance = crowding;
        ind
    }

    #[test]
    fn new_copies_evaluation() {
        let ind = Individual::new(vec![0.1, 0.9], Evaluation::new(vec![3.0], 0.5));
        assert_eq!(ind.genes, vec![0.1, 0.9]);
        assert_eq!(ind.objectives, vec![3.0]);
        assert!(!ind.is_feasible());
        assert_eq!(ind.rank, usize::MAX);
    }

    #[test]
    fn crowded_compare_prefers_lower_rank() {
        assert!(individual(0, 0.0).crowded_compare(&individual(1, 10.0)));
        assert!(!individual(2, 10.0).crowded_compare(&individual(1, 0.0)));
    }

    #[test]
    fn crowded_compare_breaks_ties_with_crowding() {
        assert!(individual(1, 5.0).crowded_compare(&individual(1, 2.0)));
        assert!(!individual(1, 1.0).crowded_compare(&individual(1, 2.0)));
    }
}
