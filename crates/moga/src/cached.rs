//! Memoizing problem wrapper.
//!
//! Discrete design spaces (like EasyACIM's bucketed (H, W, L, B_ADC)
//! genome) make NSGA-II re-sample the same designs over and over: crossover
//! between similar parents and no-op mutations routinely reproduce genomes
//! the optimiser has already paid to evaluate.  [`CachedProblem`] wraps any
//! [`Problem`] with a hash map keyed by **quantized** genomes so duplicate
//! designs are never re-evaluated, and counts hits/misses so run reports
//! can show how much evaluation work the cache absorbed.
//!
//! The batch path is duplicate-aware: genomes that repeat *within* one
//! batch are also evaluated only once, and only the unique misses are
//! forwarded to the inner problem's [`Problem::evaluate_batch`] — so a
//! parallel inner batch spends its threads exclusively on new designs.
//!
//! Caching is transparent to seeded runs: a hit returns a clone of exactly
//! the evaluation the serial path would have recomputed, so Pareto fronts
//! are bit-identical with and without the wrapper (provided the quantum is
//! finer than the problem's decode resolution, which the conservative
//! default guarantees for every problem in this workspace).
//!
//! # Sharing one cache across runs
//!
//! The entries live in a [`CacheStore`] — a cheaply cloneable, thread-safe
//! handle to one shared map.  A long-lived caller (like the `easyacim`
//! `ExplorationService`) keeps one store per design space and hands clones
//! of it to every request's [`CachedProblem`] via
//! [`CachedProblem::with_shared_store`]: entries written by one request are
//! hits for the next, while the hit/miss counters stay **per wrapper**, so
//! each request still reports its own [`CacheStats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::problem::{Evaluation, Problem};

/// Default genome quantum: far finer than any decode bucket used by the
/// EasyACIM problems (whose coarsest axis splits `[0, 1]` into a handful of
/// buckets), yet coarse enough to fold floating-point dust onto one key.
pub const DEFAULT_QUANTUM: f64 = 1e-9;

/// Hit/miss counters of a [`CachedProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Evaluations answered from the cache (including duplicates within a
    /// single batch).
    pub hits: usize,
    /// Evaluations that had to be computed by the inner problem.
    pub misses: usize,
}

impl CacheStats {
    /// Total evaluation requests seen by the cache.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of requests answered from the cache, in `[0, 1]`
    /// (`0.0` when nothing was requested yet).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

/// A thread-safe, cheaply cloneable handle to one shared evaluation map.
///
/// Clones share the same underlying entries (`Arc` semantics), which is
/// what lets many concurrent [`CachedProblem`] wrappers — one per
/// exploration request — amortise evaluations across requests.  Keys must
/// come from one consistent quantizer per store: mixing key functions in
/// one store silently partitions (or worse, collides) the entries.
#[derive(Clone, Default)]
pub struct CacheStore {
    entries: Arc<Mutex<HashMap<Vec<i64>, Evaluation>>>,
}

impl CacheStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached evaluations.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up one key.
    pub fn get(&self, key: &[i64]) -> Option<Evaluation> {
        self.lock().get(key).cloned()
    }

    /// Inserts one evaluation.  Re-inserting an existing key overwrites
    /// it, which is harmless as long as every writer derives evaluations
    /// deterministically from the key (the [`CachedProblem`] contract).
    pub fn insert(&self, key: Vec<i64>, evaluation: Evaluation) {
        self.lock().insert(key, evaluation);
    }

    /// Removes every entry.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Returns `true` when `other` is a handle to the same underlying map.
    pub fn shares_entries_with(&self, other: &CacheStore) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<Vec<i64>, Evaluation>> {
        self.entries.lock().expect("cache store lock poisoned")
    }
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStore")
            .field("entries", &self.len())
            .finish()
    }
}

/// A genome → cache-key quantizer.
///
/// The key decides which genomes count as "the same design".  The default
/// folds each gene onto a fine fixed grid; problems with bucketed decoders
/// (like the EasyACIM design spaces) should instead supply their decode
/// buckets via [`CachedProblem::with_key_fn`], which makes every genome
/// that decodes to the same design share one cache entry.
pub type KeyFn = dyn Fn(&[f64]) -> Vec<i64> + Send + Sync;

/// A [`Problem`] wrapper that memoizes evaluations keyed by quantized
/// genomes.
///
/// # Example
///
/// ```
/// use acim_moga::{CachedProblem, Evaluation, Problem};
///
/// struct Square;
/// impl Problem for Square {
///     fn num_variables(&self) -> usize { 1 }
///     fn num_objectives(&self) -> usize { 1 }
///     fn evaluate(&self, genes: &[f64]) -> Evaluation {
///         Evaluation::unconstrained(vec![genes[0] * genes[0]])
///     }
/// }
///
/// let cached = CachedProblem::new(Square);
/// let a = cached.evaluate(&[0.5]);
/// let b = cached.evaluate(&[0.5]); // answered from the cache
/// assert_eq!(a, b);
/// let stats = cached.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
pub struct CachedProblem<P> {
    inner: P,
    quantum: f64,
    key_fn: Option<Box<KeyFn>>,
    store: CacheStore,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<P: std::fmt::Debug> std::fmt::Debug for CachedProblem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedProblem")
            .field("inner", &self.inner)
            .field("quantum", &self.quantum)
            .field("custom_key", &self.key_fn.is_some())
            .field(
                "stats",
                &CacheStats {
                    hits: self.hits.load(Ordering::Relaxed),
                    misses: self.misses.load(Ordering::Relaxed),
                },
            )
            .finish_non_exhaustive()
    }
}

impl<P: Problem> CachedProblem<P> {
    /// Wraps a problem with the conservative [`DEFAULT_QUANTUM`].
    pub fn new(inner: P) -> Self {
        Self::with_quantum(inner, DEFAULT_QUANTUM)
    }

    /// Wraps a problem, folding genomes onto cache keys at `quantum`
    /// resolution.  Larger quanta merge more near-duplicates (useful when
    /// the decode buckets are coarse); the quantum must stay finer than
    /// the problem's decode resolution for caching to be semantically
    /// lossless.
    ///
    /// # Panics
    ///
    /// Panics when `quantum` is not strictly positive and finite.
    pub fn with_quantum(inner: P, quantum: f64) -> Self {
        assert!(
            quantum > 0.0 && quantum.is_finite(),
            "quantum must be positive and finite, got {quantum}"
        );
        Self {
            inner,
            quantum,
            key_fn: None,
            store: CacheStore::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Wraps a problem with a custom genome → key quantizer.
    ///
    /// The key function must be **decode-aligned**: two genomes may share a
    /// key only when the problem evaluates them to the identical
    /// [`Evaluation`].  Under that contract caching stays bit-lossless and
    /// far more effective than gene-grid quantization — e.g. the EasyACIM
    /// problems key by decoded bucket indices, so every genome that lands
    /// in the same (H, L, B, …) design hits one cache entry.
    pub fn with_key_fn<F>(inner: P, key_fn: F) -> Self
    where
        F: Fn(&[f64]) -> Vec<i64> + Send + Sync + 'static,
    {
        Self {
            inner,
            quantum: DEFAULT_QUANTUM,
            key_fn: Some(Box::new(key_fn)),
            store: CacheStore::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Replaces the wrapper's (fresh, empty) store with a handle to a
    /// shared one, so this wrapper reads and writes entries other wrappers
    /// over the same design space already produced.
    ///
    /// The hit/miss counters remain **per wrapper**: a request served by a
    /// pre-populated shared store reports those answers as its own hits,
    /// which is exactly the per-request attribution a multi-tenant service
    /// wants.  The caller must pair one store with one key function — the
    /// store trusts its keys.
    #[must_use]
    pub fn with_shared_store(mut self, store: CacheStore) -> Self {
        self.store = store;
        self
    }

    /// The wrapper's store handle (clone it to share entries with another
    /// wrapper or to inspect the cache after the wrapper is dropped).
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper and returns the inner problem.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Number of distinct designs currently cached (shared-store wrappers
    /// count entries written by every wrapper on the store).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Quantizes a genome into its cache key.
    fn key(&self, genes: &[f64]) -> Vec<i64> {
        match &self.key_fn {
            Some(key_fn) => key_fn(genes),
            None => genes
                .iter()
                .map(|&g| (g / self.quantum).round() as i64)
                .collect(),
        }
    }
}

impl<P: Problem> Problem for CachedProblem<P> {
    fn num_variables(&self) -> usize {
        self.inner.num_variables()
    }

    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }

    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        let key = self.key(genes);
        if let Some(eval) = self.store.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return eval;
        }
        let eval = self.inner.evaluate(genes);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.store.insert(key, eval.clone());
        eval
    }

    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        // Resolve every genome against the cache (and against earlier
        // duplicates in this very batch) first, so the inner problem only
        // sees the unique misses.
        let keys: Vec<Vec<i64>> = genomes.iter().map(|g| self.key(g)).collect();
        let mut results: Vec<Option<Evaluation>> = vec![None; genomes.len()];
        let mut miss_genomes: Vec<Vec<f64>> = Vec::new();
        let mut miss_keys: Vec<Vec<i64>> = Vec::new();
        // Which unique miss (by position in `miss_genomes`) fills slot i.
        let mut pending: Vec<(usize, usize)> = Vec::new();
        {
            let cache = self.store.lock();
            let mut batch_local: HashMap<&[i64], usize> = HashMap::new();
            for (i, key) in keys.iter().enumerate() {
                if let Some(eval) = cache.get(key) {
                    results[i] = Some(eval.clone());
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else if let Some(&slot) = batch_local.get(key.as_slice()) {
                    // Duplicate within the batch: evaluated once below.
                    pending.push((i, slot));
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    let slot = miss_genomes.len();
                    batch_local.insert(key.as_slice(), slot);
                    miss_genomes.push(genomes[i].clone());
                    miss_keys.push(key.clone());
                    pending.push((i, slot));
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        let fresh = self.inner.evaluate_batch(&miss_genomes);
        assert_eq!(
            fresh.len(),
            miss_genomes.len(),
            "inner evaluate_batch must return one evaluation per genome"
        );
        {
            let mut cache = self.store.lock();
            for (key, eval) in miss_keys.into_iter().zip(&fresh) {
                cache.insert(key, eval.clone());
            }
        }
        for (i, slot) in pending {
            results[i] = Some(fresh[slot].clone());
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot is filled"))
            .collect()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts how many times the inner problem actually evaluates.
    #[derive(Debug)]
    struct Counting {
        calls: AtomicUsize,
        batch_calls: AtomicUsize,
    }

    impl Counting {
        fn new() -> Self {
            Self {
                calls: AtomicUsize::new(0),
                batch_calls: AtomicUsize::new(0),
            }
        }
    }

    impl Problem for Counting {
        fn num_variables(&self) -> usize {
            2
        }
        fn num_objectives(&self) -> usize {
            1
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Evaluation::unconstrained(vec![genes[0] + 2.0 * genes[1]])
        }
        fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            genomes.iter().map(|g| self.evaluate(g)).collect()
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn repeat_evaluations_hit_the_cache() {
        let cached = CachedProblem::new(Counting::new());
        let a = cached.evaluate(&[0.25, 0.5]);
        let b = cached.evaluate(&[0.25, 0.5]);
        let c = cached.evaluate(&[0.75, 0.5]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 2);
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 2 });
        assert_eq!(cached.len(), 2);
    }

    #[test]
    fn batch_deduplicates_within_and_across_batches() {
        let cached = CachedProblem::new(Counting::new());
        let genomes = vec![
            vec![0.1, 0.1],
            vec![0.2, 0.2],
            vec![0.1, 0.1], // intra-batch duplicate
            vec![0.3, 0.3],
        ];
        let batch = cached.evaluate_batch(&genomes);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0], batch[2]);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 3);
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 3 });

        // A second batch re-using previous designs evaluates only new ones.
        let batch2 = cached.evaluate_batch(&[vec![0.2, 0.2], vec![0.4, 0.4]]);
        assert_eq!(batch2[0], batch[1]);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 4);
        assert_eq!(cached.stats(), CacheStats { hits: 2, misses: 4 });
    }

    #[test]
    fn batch_results_preserve_input_order_and_match_serial() {
        let cached = CachedProblem::new(Counting::new());
        let genomes: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![f64::from(i) / 10.0, f64::from(i % 3) / 3.0])
            .collect();
        let batch = cached.evaluate_batch(&genomes);
        for (genes, eval) in genomes.iter().zip(&batch) {
            assert_eq!(eval, &Counting::new().evaluate(genes));
        }
    }

    #[test]
    fn quantization_folds_floating_point_dust() {
        let cached = CachedProblem::with_quantum(Counting::new(), 1e-6);
        let _ = cached.evaluate(&[0.5, 0.5]);
        let _ = cached.evaluate(&[0.5 + 1e-9, 0.5 - 1e-9]);
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn hit_rate_reads_naturally() {
        let stats = CacheStats { hits: 3, misses: 1 };
        assert_eq!(stats.total(), 4);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert!(stats.to_string().contains("75.0% hit rate"));
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_is_rejected() {
        let _ = CachedProblem::with_quantum(Counting::new(), 0.0);
    }

    #[test]
    fn custom_key_fn_merges_decode_equivalent_genomes() {
        // Key by a 4-bucket decode: all genes in the same quarter of
        // [0, 1] are "the same design".
        let cached = CachedProblem::with_key_fn(Counting::new(), |genes| {
            genes
                .iter()
                .map(|&g| (g.clamp(0.0, 1.0) * 4.0) as i64)
                .collect()
        });
        let a = cached.evaluate(&[0.30, 0.30]);
        let b = cached.evaluate(&[0.26, 0.28]); // same buckets -> cache hit
        let c = cached.evaluate(&[0.60, 0.30]); // different bucket
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 2 });
        assert!(format!("{cached:?}").contains("custom_key: true"));
    }

    #[test]
    fn shared_store_amortises_across_wrappers_with_per_wrapper_stats() {
        let store = CacheStore::new();
        let first = CachedProblem::new(Counting::new()).with_shared_store(store.clone());
        let _ = first.evaluate_batch(&[vec![0.1, 0.1], vec![0.2, 0.2]]);
        assert_eq!(first.stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(store.len(), 2);

        // A second wrapper (a new "request") over the same store: answers
        // come from the shared entries, attributed to this wrapper.
        let second = CachedProblem::new(Counting::new()).with_shared_store(store.clone());
        let batch = second.evaluate_batch(&[vec![0.2, 0.2], vec![0.3, 0.3]]);
        assert_eq!(batch.len(), 2);
        assert_eq!(second.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(second.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(store.len(), 3);
        // The first wrapper's counters are untouched.
        assert_eq!(first.stats(), CacheStats { hits: 0, misses: 2 });
        assert!(first.store().shares_entries_with(second.store()));
    }

    #[test]
    fn store_handles_clone_shallowly() {
        let store = CacheStore::new();
        assert!(store.is_empty());
        let alias = store.clone();
        alias.insert(vec![1, 2], Evaluation::unconstrained(vec![0.5]));
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(&[1, 2]),
            Some(Evaluation::unconstrained(vec![0.5]))
        );
        assert!(store.shares_entries_with(&alias));
        assert!(!store.shares_entries_with(&CacheStore::new()));
        assert!(format!("{store:?}").contains("entries"));
        store.clear();
        assert!(alias.is_empty());
        assert_eq!(store.get(&[1, 2]), None);
    }

    #[test]
    fn trait_surface_forwards_to_inner() {
        let cached = CachedProblem::new(Counting::new());
        assert_eq!(cached.num_variables(), 2);
        assert_eq!(cached.num_objectives(), 1);
        assert_eq!(cached.name(), "counting");
        assert!(cached.is_empty());
        let _ = cached.into_inner();
    }
}
