//! Memoizing problem wrapper.
//!
//! Discrete design spaces (like EasyACIM's bucketed (H, W, L, B_ADC)
//! genome) make NSGA-II re-sample the same designs over and over: crossover
//! between similar parents and no-op mutations routinely reproduce genomes
//! the optimiser has already paid to evaluate.  [`CachedProblem`] wraps any
//! [`Problem`] with a hash map keyed by **quantized** genomes so duplicate
//! designs are never re-evaluated, and counts hits/misses so run reports
//! can show how much evaluation work the cache absorbed.
//!
//! The batch path is duplicate-aware: genomes that repeat *within* one
//! batch are also evaluated only once, and only the unique misses are
//! forwarded to the inner problem's [`Problem::evaluate_batch`] — so a
//! parallel inner batch spends its threads exclusively on new designs.
//!
//! Caching is transparent to seeded runs: a hit returns a clone of exactly
//! the evaluation the serial path would have recomputed, so Pareto fronts
//! are bit-identical with and without the wrapper (provided the quantum is
//! finer than the problem's decode resolution, which the conservative
//! default guarantees for every problem in this workspace).
//!
//! # Sharing one cache across runs
//!
//! The entries live in a [`CacheStore`] — a cheaply cloneable, thread-safe
//! handle to one shared map.  A long-lived caller (like the `easyacim`
//! `ExplorationService`) keeps one store per design space and hands clones
//! of it to every request's [`CachedProblem`] via
//! [`CachedProblem::with_shared_store`]: entries written by one request are
//! hits for the next, while the hit/miss counters stay **per wrapper**, so
//! each request still reports its own [`CacheStats`].

use std::collections::HashMap;
use std::sync::MutexGuard;

use acim_telemetry::Counter;

use crate::clock::ClockMap;
use crate::problem::{Evaluation, Problem};
use crate::shared_cache::SharedCache;

/// Default genome quantum: far finer than any decode bucket used by the
/// EasyACIM problems (whose coarsest axis splits `[0, 1]` into a handful of
/// buckets), yet coarse enough to fold floating-point dust onto one key.
pub const DEFAULT_QUANTUM: f64 = 1e-9;

/// Hit/miss/eviction counters of a [`CachedProblem`] (or any other cache
/// reporting through the same shape, like the chip evaluator's
/// macro-metric cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Evaluations answered from the cache (including duplicates within a
    /// single batch).
    pub hits: usize,
    /// Evaluations that had to be computed by the inner problem.
    pub misses: usize,
    /// Entries this wrapper's inserts pushed out of a bounded store
    /// (always `0` on unbounded stores).  Attribution is per wrapper, like
    /// hits and misses: on a shared store each request counts only the
    /// evictions its own inserts triggered.
    pub evictions: usize,
}

impl CacheStats {
    /// Counters with `hits` and `misses` and no evictions — the common
    /// literal for unbounded caches (and for tests).
    pub fn hits_misses(hits: usize, misses: usize) -> Self {
        Self {
            hits,
            misses,
            evictions: 0,
        }
    }

    /// Total evaluation requests seen by the cache.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of requests answered from the cache, in `[0, 1]`
    /// (`0.0` when nothing was requested yet — never `NaN`, so the value
    /// is always safe to print or aggregate; `tests/service.rs` asserts
    /// full-cache-hit `--quick` replays render clean reports).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// The hit/miss/eviction counter triple every cache layer in this
/// workspace records into — [`CachedProblem`] here, the chip evaluator's
/// `MacroCacheClient` downstream.
///
/// The counters are telemetry [`Counter`]s: lock-free handles that a
/// telemetry registry can adopt (so a service exposes the *same* counters
/// the wrapper bumps, instead of a parallel bookkeeping copy), while
/// [`CacheCounters::stats`] keeps the legacy [`CacheStats`] reporting
/// shape working unchanged. Clones share the underlying values.
#[derive(Debug, Clone, Default)]
pub struct CacheCounters {
    /// Requests answered from the cache.
    pub hits: Counter,
    /// Requests that had to be computed.
    pub misses: Counter,
    /// Entries this owner's inserts pushed out of a bounded store.
    pub evictions: Counter,
}

impl CacheCounters {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot in the legacy [`CacheStats`] shape. Values are clamped
    /// into `usize` (a non-issue on 64-bit targets).
    pub fn stats(&self) -> CacheStats {
        let clamp = |v: u64| usize::try_from(v).unwrap_or(usize::MAX);
        CacheStats {
            hits: clamp(self.hits.get()),
            misses: clamp(self.misses.get()),
            evictions: clamp(self.evictions.get()),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )?;
        if self.evictions > 0 {
            write!(f, ", {} evicted", self.evictions)?;
        }
        Ok(())
    }
}

/// A thread-safe, cheaply cloneable handle to one shared evaluation map.
///
/// Clones share the same underlying entries (`Arc` semantics), which is
/// what lets many concurrent [`CachedProblem`] wrappers — one per
/// exploration request — amortise evaluations across requests.  Keys must
/// come from one consistent quantizer per store: mixing key functions in
/// one store silently partitions (or worse, collides) the entries.
///
/// # Capacity and eviction
///
/// [`CacheStore::bounded`] caps the store at a fixed number of entries,
/// recycled CLOCK-style (see [`ClockMap`]) — the configuration a
/// long-lived service wants, where an unbounded per-space cache would
/// grow for the life of the process.  Eviction never changes results:
/// entries are pure functions of their keys, so an evicted entry is a
/// future miss, not a different answer.
///
/// # Poison tolerance
///
/// The store is shared by many tenants, and one tenant panicking (in a
/// worker thread, or inside a [`CacheStore::get_or_insert_with`] closure)
/// must not take the others down.  The store is a thin newtype over the
/// generic [`SharedCache`] core, which recovers the guard from a poisoned
/// mutex on every lock acquisition — see [`SharedCache::lock`].
#[derive(Clone, Default)]
pub struct CacheStore {
    shared: SharedCache<Vec<i64>, Evaluation>,
}

impl CacheStore {
    /// Creates an empty, unbounded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store holding at most `capacity` entries, evicting
    /// CLOCK-style beyond that.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            shared: SharedCache::bounded(capacity),
        }
    }

    /// Number of cached evaluations.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// The capacity bound, `None` for unbounded stores.
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity()
    }

    /// Entries evicted from the store since creation (or the last
    /// [`CacheStore::clear`]), summed over every wrapper sharing it.
    pub fn evictions(&self) -> u64 {
        self.shared.evictions()
    }

    /// Looks up one key (marking the entry recently used).
    pub fn get(&self, key: &[i64]) -> Option<Evaluation> {
        self.shared.get(key)
    }

    /// Inserts one evaluation and reports whether the insert evicted an
    /// existing entry.  Re-inserting an existing key overwrites it, which
    /// is harmless as long as every writer derives evaluations
    /// deterministically from the key (the [`CachedProblem`] contract).
    pub fn insert(&self, key: Vec<i64>, evaluation: Evaluation) -> bool {
        self.shared.insert(key, evaluation)
    }

    /// Returns the cached evaluation for `key`, computing and inserting it
    /// via `compute` on a miss — one lock round-trip, so two tenants
    /// racing on the same key cannot both observe a miss.  The second
    /// element reports whether the value was a hit.
    ///
    /// `compute` runs **under the store lock**: it must stay cheap (a key
    /// derivation, a pre-computed value), because it serializes every
    /// other tenant of a shared store while it runs — real evaluations
    /// belong outside the lock in the racy-get / first-wins-insert
    /// pattern of `acim_chip`'s `MacroCacheClient::get_or_derive`.  A
    /// panicking closure poisons the mutex — which the store tolerates
    /// (see the type-level docs), so a panicking tenant costs only its
    /// own request.
    pub fn get_or_insert_with<F>(&self, key: Vec<i64>, compute: F) -> (Evaluation, bool)
    where
        F: FnOnce() -> Evaluation,
    {
        self.shared.get_or_insert_with(key, compute)
    }

    /// Removes every entry and resets the eviction counter.
    pub fn clear(&self) {
        self.shared.clear();
    }

    /// Clones every cached evaluation out of the store under one lock
    /// round-trip — the export half of snapshot persistence.  Order is
    /// unspecified; snapshot writers sort by key for deterministic files.
    pub fn export_entries(&self) -> Vec<(Vec<i64>, Evaluation)> {
        self.shared.export_entries()
    }

    /// Merges evaluations under one lock round-trip, first-wins (live
    /// entries beat imported ones; values are pure functions of their
    /// keys, so either copy is bit-identical).  Bounded stores accept the
    /// merge CLOCK-style.  Returns `(inserted, skipped)`.
    pub fn import_entries(
        &self,
        entries: impl IntoIterator<Item = (Vec<i64>, Evaluation)>,
    ) -> (usize, usize) {
        self.shared.bulk_insert(entries)
    }

    /// Returns `true` when `other` is a handle to the same underlying map.
    pub fn shares_entries_with(&self, other: &CacheStore) -> bool {
        self.shared.shares_entries_with(&other.shared)
    }

    fn lock(&self) -> MutexGuard<'_, ClockMap<Vec<i64>, Evaluation>> {
        self.shared.lock()
    }
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStore")
            .field("entries", &self.len())
            .field("capacity", &self.capacity())
            .field("evictions", &self.evictions())
            .finish()
    }
}

/// A genome → cache-key quantizer.
///
/// The key decides which genomes count as "the same design".  The default
/// folds each gene onto a fine fixed grid; problems with bucketed decoders
/// (like the EasyACIM design spaces) should instead supply their decode
/// buckets via [`CachedProblem::with_key_fn`], which makes every genome
/// that decodes to the same design share one cache entry.
pub type KeyFn = dyn Fn(&[f64]) -> Vec<i64> + Send + Sync;

/// A [`Problem`] wrapper that memoizes evaluations keyed by quantized
/// genomes.
///
/// # Example
///
/// ```
/// use acim_moga::{CachedProblem, Evaluation, Problem};
///
/// struct Square;
/// impl Problem for Square {
///     fn num_variables(&self) -> usize { 1 }
///     fn num_objectives(&self) -> usize { 1 }
///     fn evaluate(&self, genes: &[f64]) -> Evaluation {
///         Evaluation::unconstrained(vec![genes[0] * genes[0]])
///     }
/// }
///
/// let cached = CachedProblem::new(Square);
/// let a = cached.evaluate(&[0.5]);
/// let b = cached.evaluate(&[0.5]); // answered from the cache
/// assert_eq!(a, b);
/// let stats = cached.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
pub struct CachedProblem<P> {
    inner: P,
    quantum: f64,
    key_fn: Option<Box<KeyFn>>,
    store: CacheStore,
    counters: CacheCounters,
}

impl<P: std::fmt::Debug> std::fmt::Debug for CachedProblem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedProblem")
            .field("inner", &self.inner)
            .field("quantum", &self.quantum)
            .field("custom_key", &self.key_fn.is_some())
            .field("stats", &self.counters.stats())
            .finish_non_exhaustive()
    }
}

impl<P: Problem> CachedProblem<P> {
    /// Wraps a problem with the conservative [`DEFAULT_QUANTUM`].
    pub fn new(inner: P) -> Self {
        Self::with_quantum(inner, DEFAULT_QUANTUM)
    }

    /// Wraps a problem, folding genomes onto cache keys at `quantum`
    /// resolution.  Larger quanta merge more near-duplicates (useful when
    /// the decode buckets are coarse); the quantum must stay finer than
    /// the problem's decode resolution for caching to be semantically
    /// lossless.
    ///
    /// # Panics
    ///
    /// Panics when `quantum` is not strictly positive and finite.
    pub fn with_quantum(inner: P, quantum: f64) -> Self {
        assert!(
            quantum > 0.0 && quantum.is_finite(),
            "quantum must be positive and finite, got {quantum}"
        );
        Self {
            inner,
            quantum,
            key_fn: None,
            store: CacheStore::new(),
            counters: CacheCounters::new(),
        }
    }

    /// Wraps a problem with a custom genome → key quantizer.
    ///
    /// The key function must be **decode-aligned**: two genomes may share a
    /// key only when the problem evaluates them to the identical
    /// [`Evaluation`].  Under that contract caching stays bit-lossless and
    /// far more effective than gene-grid quantization — e.g. the EasyACIM
    /// problems key by decoded bucket indices, so every genome that lands
    /// in the same (H, L, B, …) design hits one cache entry.
    pub fn with_key_fn<F>(inner: P, key_fn: F) -> Self
    where
        F: Fn(&[f64]) -> Vec<i64> + Send + Sync + 'static,
    {
        Self {
            inner,
            quantum: DEFAULT_QUANTUM,
            key_fn: Some(Box::new(key_fn)),
            store: CacheStore::new(),
            counters: CacheCounters::new(),
        }
    }

    /// Replaces the wrapper's (fresh, empty) store with a handle to a
    /// shared one, so this wrapper reads and writes entries other wrappers
    /// over the same design space already produced.
    ///
    /// The hit/miss counters remain **per wrapper**: a request served by a
    /// pre-populated shared store reports those answers as its own hits,
    /// which is exactly the per-request attribution a multi-tenant service
    /// wants.  The caller must pair one store with one key function — the
    /// store trusts its keys.
    #[must_use]
    pub fn with_shared_store(mut self, store: CacheStore) -> Self {
        self.store = store;
        self
    }

    /// Replaces the wrapper's (fresh, zeroed) counters with externally
    /// owned ones — typically handles a telemetry registry vended, so the
    /// registry exposes the very counters the hot path bumps instead of a
    /// copied-out snapshot. Attribution semantics are the caller's choice:
    /// hand per-request counters for per-request stats, or one shared
    /// triple for cumulative per-space stats.
    #[must_use]
    pub fn with_counters(mut self, counters: CacheCounters) -> Self {
        self.counters = counters;
        self
    }

    /// The wrapper's counter triple (clone it to register with a
    /// telemetry registry or to read after the wrapper is dropped).
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// The wrapper's store handle (clone it to share entries with another
    /// wrapper or to inspect the cache after the wrapper is dropped).
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper and returns the inner problem.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Number of distinct designs currently cached (shared-store wrappers
    /// count entries written by every wrapper on the store).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.counters.stats()
    }

    /// Quantizes a genome into its cache key.
    fn key(&self, genes: &[f64]) -> Vec<i64> {
        match &self.key_fn {
            Some(key_fn) => key_fn(genes),
            None => genes
                .iter()
                .map(|&g| (g / self.quantum).round() as i64)
                .collect(),
        }
    }
}

impl<P: Problem> Problem for CachedProblem<P> {
    fn num_variables(&self) -> usize {
        self.inner.num_variables()
    }

    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }

    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        let key = self.key(genes);
        if let Some(eval) = self.store.get(&key) {
            self.counters.hits.inc();
            return eval;
        }
        let eval = self.inner.evaluate(genes);
        self.counters.misses.inc();
        if self.store.insert(key, eval.clone()) {
            self.counters.evictions.inc();
        }
        eval
    }

    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        // Resolve every genome against the cache (and against earlier
        // duplicates in this very batch) first, so the inner problem only
        // sees the unique misses.  Attribution contract (asserted below):
        // every slot of the batch counts exactly once — as a hit when the
        // store or an earlier duplicate in this batch already knows the
        // design, as a miss otherwise — so per-request counters on a
        // shared store sum to exactly the evaluations the request issued.
        let keys: Vec<Vec<i64>> = genomes.iter().map(|g| self.key(g)).collect();
        let mut results: Vec<Option<Evaluation>> = vec![None; genomes.len()];
        let mut miss_genomes: Vec<Vec<f64>> = Vec::new();
        let mut miss_keys: Vec<Vec<i64>> = Vec::new();
        // Which unique miss (by position in `miss_genomes`) fills slot i.
        let mut pending: Vec<(usize, usize)> = Vec::new();
        let mut batch_hits = 0usize;
        {
            let mut cache = self.store.lock();
            let mut batch_local: HashMap<&[i64], usize> = HashMap::new();
            for (i, key) in keys.iter().enumerate() {
                if let Some(eval) = cache.get(key.as_slice()) {
                    results[i] = Some(eval.clone());
                    batch_hits += 1;
                } else if let Some(&slot) = batch_local.get(key.as_slice()) {
                    // Duplicate within the batch: evaluated once below,
                    // counted as one miss (the first occurrence) plus one
                    // hit per repeat.
                    pending.push((i, slot));
                    batch_hits += 1;
                } else {
                    let slot = miss_genomes.len();
                    batch_local.insert(key.as_slice(), slot);
                    miss_genomes.push(genomes[i].clone());
                    miss_keys.push(key.clone());
                    pending.push((i, slot));
                }
            }
        }
        debug_assert_eq!(
            batch_hits + miss_genomes.len(),
            genomes.len(),
            "every batch slot must be attributed exactly once"
        );
        self.counters.hits.add(batch_hits as u64);
        self.counters.misses.add(miss_genomes.len() as u64);

        let fresh = self.inner.evaluate_batch(&miss_genomes);
        assert_eq!(
            fresh.len(),
            miss_genomes.len(),
            "inner evaluate_batch must return one evaluation per genome"
        );
        {
            let mut cache = self.store.lock();
            let mut evicted = 0usize;
            for (key, eval) in miss_keys.into_iter().zip(&fresh) {
                if cache.insert(key, eval.clone()) {
                    evicted += 1;
                }
            }
            if evicted > 0 {
                self.counters.evictions.add(evicted as u64);
            }
        }
        for (i, slot) in pending {
            results[i] = Some(fresh[slot].clone());
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot is filled"))
            .collect()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Counts how many times the inner problem actually evaluates.
    #[derive(Debug)]
    struct Counting {
        calls: AtomicUsize,
        batch_calls: AtomicUsize,
    }

    impl Counting {
        fn new() -> Self {
            Self {
                calls: AtomicUsize::new(0),
                batch_calls: AtomicUsize::new(0),
            }
        }
    }

    impl Problem for Counting {
        fn num_variables(&self) -> usize {
            2
        }
        fn num_objectives(&self) -> usize {
            1
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Evaluation::unconstrained(vec![genes[0] + 2.0 * genes[1]])
        }
        fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            genomes.iter().map(|g| self.evaluate(g)).collect()
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn repeat_evaluations_hit_the_cache() {
        let cached = CachedProblem::new(Counting::new());
        let a = cached.evaluate(&[0.25, 0.5]);
        let b = cached.evaluate(&[0.25, 0.5]);
        let c = cached.evaluate(&[0.75, 0.5]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 2);
        assert_eq!(cached.stats(), CacheStats::hits_misses(1, 2));
        assert_eq!(cached.len(), 2);
    }

    #[test]
    fn batch_deduplicates_within_and_across_batches() {
        let cached = CachedProblem::new(Counting::new());
        let genomes = vec![
            vec![0.1, 0.1],
            vec![0.2, 0.2],
            vec![0.1, 0.1], // intra-batch duplicate
            vec![0.3, 0.3],
        ];
        let batch = cached.evaluate_batch(&genomes);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0], batch[2]);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 3);
        assert_eq!(cached.stats(), CacheStats::hits_misses(1, 3));

        // A second batch re-using previous designs evaluates only new ones.
        let batch2 = cached.evaluate_batch(&[vec![0.2, 0.2], vec![0.4, 0.4]]);
        assert_eq!(batch2[0], batch[1]);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 4);
        assert_eq!(cached.stats(), CacheStats::hits_misses(2, 4));
    }

    #[test]
    fn batch_results_preserve_input_order_and_match_serial() {
        let cached = CachedProblem::new(Counting::new());
        let genomes: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![f64::from(i) / 10.0, f64::from(i % 3) / 3.0])
            .collect();
        let batch = cached.evaluate_batch(&genomes);
        for (genes, eval) in genomes.iter().zip(&batch) {
            assert_eq!(eval, &Counting::new().evaluate(genes));
        }
    }

    #[test]
    fn quantization_folds_floating_point_dust() {
        let cached = CachedProblem::with_quantum(Counting::new(), 1e-6);
        let _ = cached.evaluate(&[0.5, 0.5]);
        let _ = cached.evaluate(&[0.5 + 1e-9, 0.5 - 1e-9]);
        assert_eq!(cached.stats(), CacheStats::hits_misses(1, 1));
    }

    #[test]
    fn hit_rate_reads_naturally() {
        let stats = CacheStats::hits_misses(3, 1);
        assert_eq!(stats.total(), 4);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert!(stats.to_string().contains("75.0% hit rate"));
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_is_rejected() {
        let _ = CachedProblem::with_quantum(Counting::new(), 0.0);
    }

    #[test]
    fn custom_key_fn_merges_decode_equivalent_genomes() {
        // Key by a 4-bucket decode: all genes in the same quarter of
        // [0, 1] are "the same design".
        let cached = CachedProblem::with_key_fn(Counting::new(), |genes| {
            genes
                .iter()
                .map(|&g| (g.clamp(0.0, 1.0) * 4.0) as i64)
                .collect()
        });
        let a = cached.evaluate(&[0.30, 0.30]);
        let b = cached.evaluate(&[0.26, 0.28]); // same buckets -> cache hit
        let c = cached.evaluate(&[0.60, 0.30]); // different bucket
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(cached.stats(), CacheStats::hits_misses(1, 2));
        assert!(format!("{cached:?}").contains("custom_key: true"));
    }

    #[test]
    fn shared_store_amortises_across_wrappers_with_per_wrapper_stats() {
        let store = CacheStore::new();
        let first = CachedProblem::new(Counting::new()).with_shared_store(store.clone());
        let _ = first.evaluate_batch(&[vec![0.1, 0.1], vec![0.2, 0.2]]);
        assert_eq!(first.stats(), CacheStats::hits_misses(0, 2));
        assert_eq!(store.len(), 2);

        // A second wrapper (a new "request") over the same store: answers
        // come from the shared entries, attributed to this wrapper.
        let second = CachedProblem::new(Counting::new()).with_shared_store(store.clone());
        let batch = second.evaluate_batch(&[vec![0.2, 0.2], vec![0.3, 0.3]]);
        assert_eq!(batch.len(), 2);
        assert_eq!(second.stats(), CacheStats::hits_misses(1, 1));
        assert_eq!(second.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(store.len(), 3);
        // The first wrapper's counters are untouched.
        assert_eq!(first.stats(), CacheStats::hits_misses(0, 2));
        assert!(first.store().shares_entries_with(second.store()));
    }

    #[test]
    fn store_handles_clone_shallowly() {
        let store = CacheStore::new();
        assert!(store.is_empty());
        let alias = store.clone();
        alias.insert(vec![1, 2], Evaluation::unconstrained(vec![0.5]));
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(&[1, 2]),
            Some(Evaluation::unconstrained(vec![0.5]))
        );
        assert!(store.shares_entries_with(&alias));
        assert!(!store.shares_entries_with(&CacheStore::new()));
        assert!(format!("{store:?}").contains("entries"));
        store.clear();
        assert!(alias.is_empty());
        assert_eq!(store.get(&[1, 2]), None);
    }

    #[test]
    fn poisoned_store_recovers_and_stays_usable() {
        // A tenant panicking while holding the store lock (the realistic
        // vector is a panicking `get_or_insert_with` closure) used to
        // poison the mutex and crash every other tenant's next access.
        let store = CacheStore::new();
        store.insert(vec![1], Evaluation::unconstrained(vec![1.0]));
        let poisoner = store.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            poisoner.get_or_insert_with(vec![2], || panic!("tenant panicked mid-evaluation"));
        }));
        assert!(result.is_err(), "the poisoning panic must propagate");

        // Every other tenant keeps working: reads, writes, and wrapped
        // problems all recover the guard.
        assert_eq!(store.get(&[1]), Some(Evaluation::unconstrained(vec![1.0])));
        store.insert(vec![3], Evaluation::unconstrained(vec![3.0]));
        assert_eq!(store.len(), 2);
        let cached = CachedProblem::new(Counting::new()).with_shared_store(store.clone());
        let batch = cached.evaluate_batch(&[vec![0.1, 0.1], vec![0.2, 0.2]]);
        assert_eq!(batch.len(), 2);
        assert_eq!(cached.stats(), CacheStats::hits_misses(0, 2));
    }

    #[test]
    fn bounded_store_never_exceeds_capacity_under_concurrent_insert() {
        let store = CacheStore::bounded(16);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..200i64 {
                        store.insert(
                            vec![t, i],
                            Evaluation::unconstrained(vec![(t * 1000 + i) as f64]),
                        );
                        assert!(store.len() <= 16, "store exceeded its bound");
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(store.len(), 16);
        assert_eq!(store.capacity(), Some(16));
        assert_eq!(store.evictions(), 4 * 200 - 16);
    }

    #[test]
    fn bounded_wrapper_attributes_its_own_evictions() {
        let store = CacheStore::bounded(2);
        let cached = CachedProblem::new(Counting::new()).with_shared_store(store.clone());
        for i in 0..5 {
            let _ = cached.evaluate(&[f64::from(i) / 10.0, 0.0]);
        }
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (0, 5));
        assert_eq!(stats.evictions, 3, "5 inserts into a 2-entry store");
        assert_eq!(store.evictions(), 3);
        assert!(stats.to_string().contains("3 evicted"));

        // Evicted designs are recomputed, not wrong: the same genome
        // evaluates to the same objectives after falling out of the store.
        let again = cached.evaluate(&[0.0, 0.0]);
        assert_eq!(again, Counting::new().evaluate(&[0.0, 0.0]));
    }

    #[test]
    fn intra_batch_duplicate_counts_one_miss_and_one_hit() {
        // Attribution audit (per-request accounting the service sums):
        // a genome appearing twice in one cohort is one miss (first
        // occurrence, evaluated) plus one hit (the duplicate) — never two
        // misses — and a triplicate is one miss plus two hits.
        let store = CacheStore::new();
        let request_a = CachedProblem::new(Counting::new()).with_shared_store(store.clone());
        let cohort = vec![
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            vec![0.7, 0.7],
        ];
        let evals = request_a.evaluate_batch(&cohort);
        assert_eq!(evals[0], evals[1]);
        assert_eq!(evals[0], evals[2]);
        assert_eq!(request_a.stats(), CacheStats::hits_misses(2, 2));
        assert_eq!(request_a.inner().calls.load(Ordering::Relaxed), 2);
        // Per-request totals sum to the evaluations the request issued —
        // the invariant the service's per-request attribution relies on.
        assert_eq!(request_a.stats().total(), cohort.len());

        // A second request over the shared store sees the duplicate as a
        // plain cross-request hit.
        let request_b = CachedProblem::new(Counting::new()).with_shared_store(store.clone());
        let evals_b = request_b.evaluate_batch(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        assert_eq!(evals_b[0], evals[0]);
        assert_eq!(request_b.stats(), CacheStats::hits_misses(2, 0));
        assert_eq!(request_b.inner().calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn adopted_counters_are_the_ones_the_hot_path_bumps() {
        // A registry-vended triple handed in via with_counters sees every
        // hit/miss/eviction the wrapper records — no parallel bookkeeping.
        let counters = CacheCounters::new();
        let cached = CachedProblem::new(Counting::new()).with_counters(counters.clone());
        let _ = cached.evaluate(&[0.1, 0.1]);
        let _ = cached.evaluate(&[0.1, 0.1]);
        assert_eq!(counters.hits.get(), 1);
        assert_eq!(counters.misses.get(), 1);
        assert_eq!(counters.stats(), cached.stats());
        assert_eq!(counters.stats(), CacheStats::hits_misses(1, 1));
        // The accessor exposes the same shared handles.
        cached.counters().hits.inc();
        assert_eq!(counters.hits.get(), 2);
    }

    #[test]
    fn get_or_insert_with_is_atomic_per_key() {
        let store = CacheStore::new();
        let (first, hit) =
            store.get_or_insert_with(vec![9], || Evaluation::unconstrained(vec![9.0]));
        assert!(!hit);
        let (second, hit) =
            store.get_or_insert_with(vec![9], || unreachable!("must not recompute"));
        assert!(hit);
        assert_eq!(first, second);
    }

    #[test]
    fn trait_surface_forwards_to_inner() {
        let cached = CachedProblem::new(Counting::new());
        assert_eq!(cached.num_variables(), 2);
        assert_eq!(cached.num_objectives(), 1);
        assert_eq!(cached.name(), "counting");
        assert!(cached.is_empty());
        let _ = cached.into_inner();
    }
}
