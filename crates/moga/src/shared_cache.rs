//! The one generic bounded-cache core under every shared cache in this
//! workspace.
//!
//! PR 5 grew two structurally identical cache handles — the genome-level
//! `CacheStore` here in `acim-moga` and the macro-level
//! `MacroMetricsCache` in `acim-chip` — each hand-rolling the same
//! `Arc<Mutex<ClockMap>>` plumbing: CLOCK-bounded storage, poison-tolerant
//! locking, eviction accounting, `Arc`-identity sharing.  [`SharedCache`]
//! folds that duplication onto one generic wrapper, so the concrete
//! caches are thin delegating newtypes and the locking/eviction/poison
//! semantics cannot drift apart.
//!
//! # Poison tolerance
//!
//! Every lock acquisition recovers the guard from a poisoned mutex: the
//! underlying [`ClockMap`] is consistent at every await-free step, so a
//! tenant that panicked while holding the guard costs its own request,
//! never the shared store (see [`SharedCache::lock`]).
//!
//! # Eviction never changes results
//!
//! Every cache built on this core stores values that are pure functions
//! of their keys, so an evicted entry costs a recomputation (a miss), not
//! a different answer — bounded and unbounded runs are bit-identical and
//! differ only in hit/miss/eviction counters.

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::clock::{ClockMap, TryInsert};

/// A thread-safe, cheaply cloneable handle to one shared [`ClockMap`].
///
/// Clones share the underlying entries (`Arc` semantics): a long-lived
/// service keeps one cache per design-space or parameter signature and
/// hands clones to every request, so concurrent requests reuse each
/// other's work.  Hit/miss attribution deliberately lives with the
/// consumer (see `CacheCounters`), not here — two requests sharing one
/// cache each report their own reuse.
pub struct SharedCache<K, V> {
    entries: Arc<Mutex<ClockMap<K, V>>>,
}

// Derived `Clone` would demand `K: Clone, V: Clone`; handle clones only
// copy the `Arc`.
impl<K, V> Clone for SharedCache<K, V> {
    fn clone(&self) -> Self {
        Self {
            entries: Arc::clone(&self.entries),
        }
    }
}

impl<K: Eq + Hash + Clone, V> Default for SharedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> SharedCache<K, V> {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self {
            entries: Arc::new(Mutex::new(ClockMap::unbounded())),
        }
    }

    /// Creates an empty cache holding at most `capacity` entries, evicting
    /// CLOCK-style beyond that.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            entries: Arc::new(Mutex::new(ClockMap::bounded(capacity))),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound, `None` for unbounded caches.
    pub fn capacity(&self) -> Option<usize> {
        self.lock().capacity()
    }

    /// Entries evicted since creation (or the last [`SharedCache::clear`]),
    /// summed over every handle sharing the map.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions()
    }

    /// Looks up one key (marking the entry recently used), returning a
    /// clone of the cached value.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
        V: Clone,
    {
        self.lock().get(key).cloned()
    }

    /// Inserts (or overwrites) one entry, reporting whether an existing
    /// entry was evicted to make room.  Overwriting is harmless as long as
    /// every writer derives values deterministically from the key — the
    /// contract of every cache built on this core.
    pub fn insert(&self, key: K, value: V) -> bool {
        self.lock().insert(key, value)
    }

    /// Inserts only when the key is absent (an existing entry is kept and
    /// marked recently used) — the primitive for racy-get / first-wins
    /// callers that derive values outside the lock.
    pub fn try_insert(&self, key: K, value: V) -> TryInsert {
        self.lock().try_insert(key, value)
    }

    /// Returns the cached value for `key`, computing and inserting it via
    /// `compute` on a miss — one lock round-trip, so two tenants racing on
    /// the same key cannot both observe a miss.  The second element
    /// reports whether the value was a hit.
    ///
    /// `compute` runs **under the lock**: it must stay cheap, because it
    /// serializes every other tenant while it runs — real evaluations
    /// belong outside the lock in the [`SharedCache::try_insert`]
    /// first-wins pattern.  A panicking closure poisons the mutex, which
    /// the cache tolerates, so a panicking tenant costs only its own
    /// request.
    pub fn get_or_insert_with<F>(&self, key: K, compute: F) -> (V, bool)
    where
        F: FnOnce() -> V,
        V: Clone,
    {
        let mut entries = self.lock();
        if let Some(value) = entries.get(&key) {
            return (value.clone(), true);
        }
        let value = compute();
        entries.insert(key, value.clone());
        (value, false)
    }

    /// Removes every entry and resets the eviction counter.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Clones every live entry out of the map under one lock round-trip
    /// — the export half of snapshot persistence.  Order is unspecified
    /// (snapshot writers sort for determinism); reference bits are not
    /// touched, so exporting a bounded cache does not distort its
    /// eviction order.
    pub fn export_entries(&self) -> Vec<(K, V)>
    where
        V: Clone,
    {
        self.lock()
            .iter()
            .map(|(key, value)| (key.clone(), value.clone()))
            .collect()
    }

    /// Merges entries under one lock round-trip, first-wins: an entry
    /// whose key is already present is skipped (live entries are fresher
    /// than a snapshot's, and every writer derives values
    /// deterministically from keys anyway).  Bounded caches accept the
    /// merge CLOCK-style — beyond capacity the import evicts, exactly
    /// like any other insert.  Returns `(inserted, skipped)`.
    pub fn bulk_insert(&self, entries: impl IntoIterator<Item = (K, V)>) -> (usize, usize) {
        let mut map = self.lock();
        let (mut inserted, mut skipped) = (0, 0);
        for (key, value) in entries {
            match map.try_insert(key, value) {
                TryInsert::Inserted { .. } => inserted += 1,
                TryInsert::AlreadyPresent => skipped += 1,
            }
        }
        (inserted, skipped)
    }

    /// Returns `true` when `other` is a handle to the same underlying map.
    pub fn shares_entries_with(&self, other: &SharedCache<K, V>) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    /// Locks the underlying map, recovering from poisoning.
    ///
    /// A tenant that panicked while holding the guard left the map in a
    /// consistent state, and crashing every other request on a shared
    /// store would turn one bad job into a service outage — so the poison
    /// flag carries no information worth propagating.  Exposed so batch
    /// consumers (like `CachedProblem::evaluate_batch`) can resolve a
    /// whole cohort under one lock round-trip instead of one per genome.
    pub fn lock(&self) -> MutexGuard<'_, ClockMap<K, V>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<K: Eq + Hash + Clone, V> std::fmt::Debug for SharedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity())
            .field("evictions", &self.evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_entries_and_round_trip_values() {
        let cache: SharedCache<u32, String> = SharedCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), None);
        let alias = cache.clone();
        assert!(!alias.insert(1, "one".into()));
        assert_eq!(cache.get(&1), Some("one".into()));
        assert_eq!(cache.len(), 1);
        assert!(cache.shares_entries_with(&alias));
        assert!(!cache.shares_entries_with(&SharedCache::new()));
        assert!(format!("{cache:?}").contains("entries"));
        cache.clear();
        assert!(alias.is_empty());
    }

    #[test]
    fn bounded_cache_evicts_and_stays_within_capacity() {
        let cache: SharedCache<u32, u32> = SharedCache::bounded(2);
        let mut evicted = 0;
        for i in 0..3 {
            if cache.insert(i, i) {
                evicted += 1;
            }
            assert!(cache.len() <= 2);
        }
        assert_eq!(evicted, 1);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.capacity(), Some(2));
    }

    #[test]
    fn try_insert_is_first_wins() {
        let cache: SharedCache<u32, u32> = SharedCache::new();
        assert_eq!(
            cache.try_insert(7, 70),
            TryInsert::Inserted { evicted: false }
        );
        assert_eq!(cache.try_insert(7, 99), TryInsert::AlreadyPresent);
        assert_eq!(cache.get(&7), Some(70), "loser's value is dropped");
    }

    #[test]
    fn get_or_insert_with_is_atomic_per_key() {
        let cache: SharedCache<u32, u32> = SharedCache::new();
        let (first, hit) = cache.get_or_insert_with(9, || 90);
        assert!(!hit);
        let (second, hit) = cache.get_or_insert_with(9, || unreachable!("must not recompute"));
        assert!(hit);
        assert_eq!(first, second);
    }

    #[test]
    fn borrowed_key_lookup_works() {
        // `Vec<i64>` keys looked up by `&[i64]` — the genome-store shape.
        let cache: SharedCache<Vec<i64>, f64> = SharedCache::new();
        cache.insert(vec![1, 2], 0.5);
        let key: &[i64] = &[1, 2];
        assert_eq!(cache.get(key), Some(0.5));
    }

    #[test]
    fn export_and_bulk_insert_round_trip_first_wins() {
        let cache: SharedCache<u32, u32> = SharedCache::new();
        cache.insert(1, 10);
        cache.insert(2, 20);
        let mut exported = cache.export_entries();
        exported.sort_unstable();
        assert_eq!(exported, vec![(1, 10), (2, 20)]);

        // Merging into a cache that already knows key 2 keeps the live
        // value and reports the skip.
        let target: SharedCache<u32, u32> = SharedCache::new();
        target.insert(2, 99);
        let (inserted, skipped) = target.bulk_insert(exported);
        assert_eq!((inserted, skipped), (1, 1));
        assert_eq!(target.get(&2), Some(99), "live entries win over imports");
        assert_eq!(target.get(&1), Some(10));

        // A bounded target absorbs what fits and evicts beyond capacity.
        let bounded: SharedCache<u32, u32> = SharedCache::bounded(2);
        let (inserted, _) = bounded.bulk_insert((0..5).map(|i| (i, i)));
        assert_eq!(inserted, 5);
        assert_eq!(bounded.len(), 2);
        assert_eq!(bounded.evictions(), 3);
    }

    #[test]
    fn poisoned_cache_recovers() {
        let cache: SharedCache<u32, u32> = SharedCache::new();
        cache.insert(1, 10);
        let poisoner = cache.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner.lock();
            panic!("tenant panicked while holding the cache lock");
        }));
        assert!(result.is_err());
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(2, 20);
        assert_eq!(cache.len(), 2);
    }
}
