//! Parent selection.

use rand::Rng;

use crate::dominance::constrained_dominates;
use crate::individual::Individual;

/// Binary tournament selection with constrained-crowded comparison:
///
/// 1. if one candidate constrained-dominates the other, it wins,
/// 2. otherwise the crowded-comparison operator (rank, then crowding
///    distance) decides,
/// 3. ties are broken randomly.
///
/// Returns the index of the winner within `population`.
///
/// # Panics
///
/// Panics if the population is empty.
pub fn binary_tournament<R: Rng + ?Sized>(rng: &mut R, population: &[Individual]) -> usize {
    assert!(!population.is_empty(), "population must not be empty");
    let a = rng.gen_range(0..population.len());
    let b = rng.gen_range(0..population.len());
    tournament_winner(rng, population, a, b)
}

/// Decides the winner between two explicit candidates (exposed for tests and
/// for mating-pool construction with pre-shuffled index pairs).
pub fn tournament_winner<R: Rng + ?Sized>(
    rng: &mut R,
    population: &[Individual],
    a: usize,
    b: usize,
) -> usize {
    let ind_a = &population[a];
    let ind_b = &population[b];
    if constrained_dominates(ind_a, ind_b) {
        return a;
    }
    if constrained_dominates(ind_b, ind_a) {
        return b;
    }
    if ind_a.crowded_compare(ind_b) {
        return a;
    }
    if ind_b.crowded_compare(ind_a) {
        return b;
    }
    if rng.gen::<bool>() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ind(objs: Vec<f64>, violation: f64, rank: usize, crowd: f64) -> Individual {
        let mut i = Individual::new(vec![0.0], Evaluation::new(objs, violation));
        i.rank = rank;
        i.crowding_distance = crowd;
        i
    }

    #[test]
    fn dominating_candidate_always_wins() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = vec![
            ind(vec![1.0, 1.0], 0.0, 0, 1.0),
            ind(vec![2.0, 2.0], 0.0, 0, 100.0),
        ];
        for _ in 0..20 {
            assert_eq!(tournament_winner(&mut rng, &pop, 0, 1), 0);
            assert_eq!(tournament_winner(&mut rng, &pop, 1, 0), 0);
        }
    }

    #[test]
    fn feasible_beats_infeasible() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = vec![
            ind(vec![9.0, 9.0], 0.0, 3, 0.0),
            ind(vec![0.0, 0.0], 1.0, 0, f64::INFINITY),
        ];
        assert_eq!(tournament_winner(&mut rng, &pop, 0, 1), 0);
    }

    #[test]
    fn crowding_breaks_rank_ties() {
        let mut rng = StdRng::seed_from_u64(3);
        // Mutually non-dominated, same rank, different crowding.
        let pop = vec![
            ind(vec![1.0, 3.0], 0.0, 1, 0.5),
            ind(vec![3.0, 1.0], 0.0, 1, 2.0),
        ];
        assert_eq!(tournament_winner(&mut rng, &pop, 0, 1), 1);
    }

    #[test]
    fn exact_ties_are_broken_randomly_but_valid() {
        let mut rng = StdRng::seed_from_u64(4);
        let pop = vec![
            ind(vec![1.0, 3.0], 0.0, 1, 1.0),
            ind(vec![3.0, 1.0], 0.0, 1, 1.0),
        ];
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[tournament_winner(&mut rng, &pop, 0, 1)] = true;
        }
        assert!(seen[0] && seen[1], "both candidates should win sometimes");
    }

    #[test]
    fn binary_tournament_returns_valid_index() {
        let mut rng = StdRng::seed_from_u64(5);
        let pop: Vec<Individual> = (0..10)
            .map(|i| ind(vec![f64::from(i), 10.0 - f64::from(i)], 0.0, 0, 1.0))
            .collect();
        for _ in 0..100 {
            let w = binary_tournament(&mut rng, &pop);
            assert!(w < pop.len());
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let pop: Vec<Individual> = Vec::new();
        let _ = binary_tournament(&mut rng, &pop);
    }
}
