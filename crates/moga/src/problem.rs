//! The [`Problem`] trait and evaluation result type.

/// The result of evaluating a genome: objective values (all minimised) and an
/// aggregate constraint violation.
///
/// A violation of `0.0` means the solution is feasible; larger values mean
/// "more infeasible".  NSGA-II uses Deb's constrained-domination rule: any
/// feasible solution dominates any infeasible one, and among infeasible
/// solutions the one with the smaller violation wins.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Objective values, all to be minimised.
    pub objectives: Vec<f64>,
    /// Aggregate constraint violation (`0.0` = feasible).
    pub constraint_violation: f64,
}

impl Evaluation {
    /// Creates an evaluation with an explicit constraint violation.
    ///
    /// # Panics
    ///
    /// Panics if `constraint_violation` is negative or NaN.
    pub fn new(objectives: Vec<f64>, constraint_violation: f64) -> Self {
        assert!(
            constraint_violation >= 0.0,
            "constraint violation must be non-negative, got {constraint_violation}"
        );
        Self {
            objectives,
            constraint_violation,
        }
    }

    /// Creates a feasible (unconstrained) evaluation.
    pub fn unconstrained(objectives: Vec<f64>) -> Self {
        Self::new(objectives, 0.0)
    }

    /// Returns `true` when the solution satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.constraint_violation == 0.0
    }
}

/// A multi-objective optimisation problem over a real-coded genome.
///
/// Genomes are vectors in `[0, 1]^n`; the problem is responsible for decoding
/// them into its native parameter space inside [`Problem::evaluate`].  This
/// keeps the variation operators (SBX, polynomial mutation) problem-agnostic,
/// which is how the EasyACIM design-space explorer drives mixed
/// integer/categorical parameters such as (H, W, L, B_ADC).
pub trait Problem {
    /// Number of genes.
    fn num_variables(&self) -> usize;

    /// Number of objectives (all minimised).
    fn num_objectives(&self) -> usize;

    /// Evaluates a genome.  `genes.len() == self.num_variables()`.
    fn evaluate(&self, genes: &[f64]) -> Evaluation;

    /// Evaluates a whole batch of genomes, returning one [`Evaluation`] per
    /// genome **in input order**.
    ///
    /// The optimisers ([`crate::Nsga2`], [`crate::random_search()`]) funnel
    /// every generation through this method, so a problem that overrides it
    /// with a parallel implementation speeds up the whole search without the
    /// optimiser knowing.  Implementations must be order-preserving and
    /// bit-identical to mapping [`Problem::evaluate`] over the slice —
    /// seeded runs stay reproducible regardless of how the batch is
    /// scheduled.
    ///
    /// The default is the serial map, so existing problems keep working
    /// unchanged.
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        genomes.iter().map(|genes| self.evaluate(genes)).collect()
    }

    /// Optional human-readable problem name (used in benchmark reports).
    fn name(&self) -> &str {
        "unnamed problem"
    }
}

// The blanket impls must forward `evaluate_batch` explicitly: falling back
// to the trait default would silently serialise a problem whose batch
// evaluation is parallel (the optimisers usually hold `&P`, not `P`).
impl<P: Problem + ?Sized> Problem for &P {
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        (**self).evaluate(genes)
    }
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(genomes)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: Problem + ?Sized> Problem for Box<P> {
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        (**self).evaluate(genes)
    }
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(genomes)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: Problem + ?Sized> Problem for std::sync::Arc<P> {
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        (**self).evaluate(genes)
    }
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(genomes)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sphere;

    impl Problem for Sphere {
        fn num_variables(&self) -> usize {
            2
        }
        fn num_objectives(&self) -> usize {
            1
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            Evaluation::unconstrained(vec![genes.iter().map(|g| g * g).sum()])
        }
        fn name(&self) -> &str {
            "sphere"
        }
    }

    #[test]
    fn unconstrained_evaluations_are_feasible() {
        let eval = Evaluation::unconstrained(vec![1.0, 2.0]);
        assert!(eval.is_feasible());
        assert_eq!(eval.objectives, vec![1.0, 2.0]);
    }

    #[test]
    fn constrained_evaluation_tracks_violation() {
        let eval = Evaluation::new(vec![1.0], 3.5);
        assert!(!eval.is_feasible());
        assert_eq!(eval.constraint_violation, 3.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_violation_panics() {
        let _ = Evaluation::new(vec![1.0], -1.0);
    }

    #[test]
    fn problem_impl_for_references() {
        fn takes_problem<P: Problem>(p: P) -> usize {
            p.num_variables()
        }
        let sphere = Sphere;
        assert_eq!(takes_problem(&sphere), 2);
        assert_eq!(sphere.name(), "sphere");
        assert_eq!(
            sphere.evaluate(&[0.5, 0.5]).objectives[0],
            0.5f64 * 0.5 + 0.5 * 0.5
        );
    }

    #[test]
    fn default_batch_is_the_serial_map_in_order() {
        let genomes = vec![vec![0.0, 0.0], vec![0.5, 0.5], vec![1.0, 0.0]];
        let batch = Sphere.evaluate_batch(&genomes);
        assert_eq!(batch.len(), 3);
        for (genes, eval) in genomes.iter().zip(&batch) {
            assert_eq!(eval, &Sphere.evaluate(genes));
        }
    }

    /// A problem whose batch evaluation is observably different from the
    /// serial map (it tags objectives with the batch size) — used to prove
    /// the blanket impls forward `evaluate_batch` instead of silently
    /// falling back to the serial default.
    struct BatchTagged;

    impl Problem for BatchTagged {
        fn num_variables(&self) -> usize {
            1
        }
        fn num_objectives(&self) -> usize {
            1
        }
        fn evaluate(&self, _genes: &[f64]) -> Evaluation {
            Evaluation::unconstrained(vec![1.0])
        }
        fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
            genomes
                .iter()
                .map(|_| Evaluation::unconstrained(vec![genomes.len() as f64]))
                .collect()
        }
    }

    #[test]
    fn blanket_impls_forward_evaluate_batch() {
        let genomes = vec![vec![0.1], vec![0.2], vec![0.3]];
        // UFCS pins the blanket `&P` impl (plain method syntax would
        // auto-deref to the inherent impl and prove nothing).
        let by_ref = <&BatchTagged as Problem>::evaluate_batch(&&BatchTagged, &genomes);
        let by_double_ref = <&&BatchTagged as Problem>::evaluate_batch(&&&BatchTagged, &genomes);
        let boxed: Box<dyn Problem> = Box::new(BatchTagged);
        let by_box = boxed.evaluate_batch(&genomes);
        let by_arc = std::sync::Arc::new(BatchTagged).evaluate_batch(&genomes);
        for batch in [by_ref, by_double_ref, by_box, by_arc] {
            assert!(
                batch.iter().all(|e| e.objectives == vec![3.0]),
                "wrapper fell back to the serial default"
            );
        }
    }
}
