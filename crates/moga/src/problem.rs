//! The [`Problem`] trait and evaluation result type.

/// Objective counts up to this arity are stored inline in [`ObjVec`],
/// without a heap allocation.
///
/// Four covers every problem in this workspace (the EasyACIM design
/// problems minimise exactly four objectives: −SNR, −throughput, energy,
/// area) with room for the common 2–3-objective benchmark problems.
pub const INLINE_OBJECTIVES: usize = 4;

/// A small-vector of objective values: up to [`INLINE_OBJECTIVES`] values
/// inline, heap-spilled beyond that.
///
/// Objective vectors are created once per evaluation — millions of times
/// per exploration — and are almost always tiny, so the historical
/// `Vec<f64>` representation made every evaluation an allocation.
/// `ObjVec` keeps the common case on the stack while staying
/// drop-in-compatible: it dereferences to `&[f64]` (indexing, `len`,
/// iteration, and `&ObjVec → &[f64]` coercion all work), converts from
/// and into `Vec<f64>`, and compares against plain vectors and arrays.
#[derive(Clone)]
pub struct ObjVec(Repr);

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        data: [f64; INLINE_OBJECTIVES],
    },
    Heap(Vec<f64>),
}

impl ObjVec {
    /// The objective values as a slice.
    pub fn as_slice(&self) -> &[f64] {
        match &self.0 {
            Repr::Inline { len, data } => &data[..usize::from(*len)],
            Repr::Heap(values) => values,
        }
    }

    /// The objective values as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        match &mut self.0 {
            Repr::Inline { len, data } => &mut data[..usize::from(*len)],
            Repr::Heap(values) => values,
        }
    }
}

impl std::ops::Deref for ObjVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for ObjVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl From<Vec<f64>> for ObjVec {
    fn from(values: Vec<f64>) -> Self {
        if values.len() <= INLINE_OBJECTIVES {
            let mut data = [0.0; INLINE_OBJECTIVES];
            data[..values.len()].copy_from_slice(&values);
            Self(Repr::Inline {
                len: values.len() as u8,
                data,
            })
        } else {
            Self(Repr::Heap(values))
        }
    }
}

impl From<&[f64]> for ObjVec {
    fn from(values: &[f64]) -> Self {
        if values.len() <= INLINE_OBJECTIVES {
            let mut data = [0.0; INLINE_OBJECTIVES];
            data[..values.len()].copy_from_slice(values);
            Self(Repr::Inline {
                len: values.len() as u8,
                data,
            })
        } else {
            Self(Repr::Heap(values.to_vec()))
        }
    }
}

impl<const N: usize> From<[f64; N]> for ObjVec {
    fn from(values: [f64; N]) -> Self {
        Self::from(values.as_slice())
    }
}

impl From<ObjVec> for Vec<f64> {
    fn from(objectives: ObjVec) -> Self {
        match objectives.0 {
            Repr::Inline { len, data } => data[..usize::from(len)].to_vec(),
            Repr::Heap(values) => values,
        }
    }
}

impl FromIterator<f64> for ObjVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<f64>>())
    }
}

impl PartialEq for ObjVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<f64>> for ObjVec {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<ObjVec> for Vec<f64> {
    fn eq(&self, other: &ObjVec) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[f64]> for ObjVec {
    fn eq(&self, other: &[f64]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[f64; N]> for ObjVec {
    fn eq(&self, other: &[f64; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for ObjVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render as the slice regardless of representation: the repr is a
        // storage detail, not part of the value.
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

/// The result of evaluating a genome: objective values (all minimised) and an
/// aggregate constraint violation.
///
/// A violation of `0.0` means the solution is feasible; larger values mean
/// "more infeasible".  NSGA-II uses Deb's constrained-domination rule: any
/// feasible solution dominates any infeasible one, and among infeasible
/// solutions the one with the smaller violation wins.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Objective values, all to be minimised.  Stored inline (no heap
    /// allocation) for up to [`INLINE_OBJECTIVES`] objectives.
    pub objectives: ObjVec,
    /// Aggregate constraint violation (`0.0` = feasible).
    pub constraint_violation: f64,
}

impl Evaluation {
    /// Creates an evaluation with an explicit constraint violation.
    ///
    /// Accepts anything convertible into an [`ObjVec`]: a `Vec<f64>`, a
    /// fixed-size array like `[f64; 4]` (the allocation-free path), or a
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics if `constraint_violation` is negative or NaN.
    pub fn new(objectives: impl Into<ObjVec>, constraint_violation: f64) -> Self {
        assert!(
            constraint_violation >= 0.0,
            "constraint violation must be non-negative, got {constraint_violation}"
        );
        Self {
            objectives: objectives.into(),
            constraint_violation,
        }
    }

    /// Creates a feasible (unconstrained) evaluation.
    pub fn unconstrained(objectives: impl Into<ObjVec>) -> Self {
        Self::new(objectives, 0.0)
    }

    /// Returns `true` when the solution satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.constraint_violation == 0.0
    }
}

/// A multi-objective optimisation problem over a real-coded genome.
///
/// Genomes are vectors in `[0, 1]^n`; the problem is responsible for decoding
/// them into its native parameter space inside [`Problem::evaluate`].  This
/// keeps the variation operators (SBX, polynomial mutation) problem-agnostic,
/// which is how the EasyACIM design-space explorer drives mixed
/// integer/categorical parameters such as (H, W, L, B_ADC).
pub trait Problem {
    /// Number of genes.
    fn num_variables(&self) -> usize;

    /// Number of objectives (all minimised).
    fn num_objectives(&self) -> usize;

    /// Evaluates a genome.  `genes.len() == self.num_variables()`.
    fn evaluate(&self, genes: &[f64]) -> Evaluation;

    /// Evaluates a whole batch of genomes, returning one [`Evaluation`] per
    /// genome **in input order**.
    ///
    /// The optimisers ([`crate::Nsga2`], [`crate::random_search()`]) funnel
    /// every generation through this method, so a problem that overrides it
    /// with a parallel implementation speeds up the whole search without the
    /// optimiser knowing.  Implementations must be order-preserving and
    /// bit-identical to mapping [`Problem::evaluate`] over the slice —
    /// seeded runs stay reproducible regardless of how the batch is
    /// scheduled.
    ///
    /// The default is the serial map, so existing problems keep working
    /// unchanged.
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        genomes.iter().map(|genes| self.evaluate(genes)).collect()
    }

    /// Optional human-readable problem name (used in benchmark reports).
    fn name(&self) -> &str {
        "unnamed problem"
    }
}

// The blanket impls must forward `evaluate_batch` explicitly: falling back
// to the trait default would silently serialise a problem whose batch
// evaluation is parallel (the optimisers usually hold `&P`, not `P`).
impl<P: Problem + ?Sized> Problem for &P {
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        (**self).evaluate(genes)
    }
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(genomes)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: Problem + ?Sized> Problem for Box<P> {
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        (**self).evaluate(genes)
    }
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(genomes)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: Problem + ?Sized> Problem for std::sync::Arc<P> {
    fn num_variables(&self) -> usize {
        (**self).num_variables()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        (**self).evaluate(genes)
    }
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(genomes)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sphere;

    impl Problem for Sphere {
        fn num_variables(&self) -> usize {
            2
        }
        fn num_objectives(&self) -> usize {
            1
        }
        fn evaluate(&self, genes: &[f64]) -> Evaluation {
            Evaluation::unconstrained(vec![genes.iter().map(|g| g * g).sum()])
        }
        fn name(&self) -> &str {
            "sphere"
        }
    }

    #[test]
    fn unconstrained_evaluations_are_feasible() {
        let eval = Evaluation::unconstrained(vec![1.0, 2.0]);
        assert!(eval.is_feasible());
        assert_eq!(eval.objectives, vec![1.0, 2.0]);
    }

    #[test]
    fn constrained_evaluation_tracks_violation() {
        let eval = Evaluation::new(vec![1.0], 3.5);
        assert!(!eval.is_feasible());
        assert_eq!(eval.constraint_violation, 3.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_violation_panics() {
        let _ = Evaluation::new(vec![1.0], -1.0);
    }

    #[test]
    fn problem_impl_for_references() {
        fn takes_problem<P: Problem>(p: P) -> usize {
            p.num_variables()
        }
        let sphere = Sphere;
        assert_eq!(takes_problem(&sphere), 2);
        assert_eq!(sphere.name(), "sphere");
        assert_eq!(
            sphere.evaluate(&[0.5, 0.5]).objectives[0],
            0.5f64 * 0.5 + 0.5 * 0.5
        );
    }

    #[test]
    fn default_batch_is_the_serial_map_in_order() {
        let genomes = vec![vec![0.0, 0.0], vec![0.5, 0.5], vec![1.0, 0.0]];
        let batch = Sphere.evaluate_batch(&genomes);
        assert_eq!(batch.len(), 3);
        for (genes, eval) in genomes.iter().zip(&batch) {
            assert_eq!(eval, &Sphere.evaluate(genes));
        }
    }

    /// A problem whose batch evaluation is observably different from the
    /// serial map (it tags objectives with the batch size) — used to prove
    /// the blanket impls forward `evaluate_batch` instead of silently
    /// falling back to the serial default.
    struct BatchTagged;

    impl Problem for BatchTagged {
        fn num_variables(&self) -> usize {
            1
        }
        fn num_objectives(&self) -> usize {
            1
        }
        fn evaluate(&self, _genes: &[f64]) -> Evaluation {
            Evaluation::unconstrained(vec![1.0])
        }
        fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
            genomes
                .iter()
                .map(|_| Evaluation::unconstrained(vec![genomes.len() as f64]))
                .collect()
        }
    }

    #[test]
    fn blanket_impls_forward_evaluate_batch() {
        let genomes = vec![vec![0.1], vec![0.2], vec![0.3]];
        // UFCS pins the blanket `&P` impl (plain method syntax would
        // auto-deref to the inherent impl and prove nothing).
        let by_ref = <&BatchTagged as Problem>::evaluate_batch(&&BatchTagged, &genomes);
        let by_double_ref = <&&BatchTagged as Problem>::evaluate_batch(&&&BatchTagged, &genomes);
        let boxed: Box<dyn Problem> = Box::new(BatchTagged);
        let by_box = boxed.evaluate_batch(&genomes);
        let by_arc = std::sync::Arc::new(BatchTagged).evaluate_batch(&genomes);
        for batch in [by_ref, by_double_ref, by_box, by_arc] {
            assert!(
                batch.iter().all(|e| e.objectives == vec![3.0]),
                "wrapper fell back to the serial default"
            );
        }
    }
}
