//! A bounded map with CLOCK (second-chance) eviction.
//!
//! The evaluation caches of this workspace started life as plain
//! `HashMap`s, which is the right shape for a single exploration run but
//! not for a long-lived multi-tenant service: a store shared across
//! thousands of requests over many design spaces grows without bound.
//! [`ClockMap`] is the common core under those caches.  Unbounded maps
//! stay a plain `HashMap` — no per-entry bookkeeping, no duplicate key
//! storage.  Bounded maps add an insert-order slot array with one
//! *referenced* bit per entry and a sweeping hand: a hit sets the
//! entry's bit; an insert into a full map advances the hand, clearing
//! bits, and evicts the first entry found unreferenced.  This is the
//! classic CLOCK approximation of LRU: recently used entries get a
//! second chance, cold entries are recycled, and neither lookups nor
//! inserts ever shift the whole structure.
//!
//! Eviction changes **what is remembered, never what is computed**: every
//! cache in this workspace stores values that are pure functions of their
//! keys, so an evicted entry costs a recomputation (a miss), not a
//! different answer.  Bounded and unbounded runs therefore produce
//! bit-identical results and differ only in hit/miss/eviction counters.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// One occupied slot of a bounded clock.
#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    /// Second-chance bit: set on every hit, cleared as the hand sweeps.
    referenced: bool,
}

/// The capacity-bounded arm: slots + key index + sweeping hand.  Keys
/// are stored twice (slot + index), which is fine precisely because the
/// entry count is bounded.
#[derive(Debug, Clone)]
struct BoundedClock<K, V> {
    capacity: usize,
    slots: Vec<Slot<K, V>>,
    index: HashMap<K, usize>,
    hand: usize,
    evictions: u64,
}

#[derive(Debug, Clone)]
enum Inner<K, V> {
    /// No bound: a plain map, no reference bits, keys stored once.
    Unbounded(HashMap<K, V>),
    Bounded(BoundedClock<K, V>),
}

/// Outcome of [`ClockMap::try_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryInsert {
    /// The key was absent and the entry was inserted.
    Inserted {
        /// Whether the insert evicted an existing entry to make room.
        evicted: bool,
    },
    /// The key was already present; the existing entry was kept and
    /// marked recently used.
    AlreadyPresent,
}

/// A map with an optional capacity bound enforced by CLOCK eviction.
///
/// The map is not internally synchronised — callers wrap it in their own
/// lock (see [`crate::CacheStore`]).
#[derive(Debug, Clone)]
pub struct ClockMap<K, V> {
    inner: Inner<K, V>,
}

impl<K: Eq + Hash + Clone, V> ClockMap<K, V> {
    /// An unbounded map: a plain hash map, no eviction, ever.
    pub fn unbounded() -> Self {
        Self {
            inner: Inner::Unbounded(HashMap::new()),
        }
    }

    /// A map holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a cache that can hold nothing is a
    /// configuration error, not a degenerate mode worth supporting.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        Self {
            inner: Inner::Bounded(BoundedClock {
                capacity,
                slots: Vec::with_capacity(capacity),
                index: HashMap::with_capacity(capacity),
                hand: 0,
                evictions: 0,
            }),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Unbounded(map) => map.len(),
            Inner::Bounded(clock) => clock.slots.len(),
        }
    }

    /// Returns `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound, `None` for unbounded maps.
    pub fn capacity(&self) -> Option<usize> {
        match &self.inner {
            Inner::Unbounded(_) => None,
            Inner::Bounded(clock) => Some(clock.capacity),
        }
    }

    /// Entries evicted to make room since construction (or the last
    /// [`ClockMap::clear`]); always `0` for unbounded maps.
    pub fn evictions(&self) -> u64 {
        match &self.inner {
            Inner::Unbounded(_) => 0,
            Inner::Bounded(clock) => clock.evictions,
        }
    }

    /// Looks up a key, marking the entry as recently used on a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match &mut self.inner {
            Inner::Unbounded(map) => map.get(key),
            Inner::Bounded(clock) => {
                let &slot = clock.index.get(key)?;
                clock.slots[slot].referenced = true;
                Some(&clock.slots[slot].value)
            }
        }
    }

    /// Inserts (or overwrites) an entry, evicting the entry under the
    /// clock hand's first unreferenced slot when a bounded map is full.
    /// Returns `true` when the insert evicted an existing entry.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        match &mut self.inner {
            Inner::Unbounded(map) => {
                map.insert(key, value);
                false
            }
            Inner::Bounded(clock) => clock.insert(key, value),
        }
    }

    /// Inserts only when the key is absent; an existing entry is kept
    /// (and marked recently used).  This is the primitive for racy-get /
    /// atomic-insert callers: workers that derived the same value
    /// concurrently outside the lock agree on exactly one inserter.
    pub fn try_insert(&mut self, key: K, value: V) -> TryInsert {
        match &mut self.inner {
            Inner::Unbounded(map) => match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => TryInsert::AlreadyPresent,
                std::collections::hash_map::Entry::Vacant(vacant) => {
                    vacant.insert(value);
                    TryInsert::Inserted { evicted: false }
                }
            },
            Inner::Bounded(clock) => {
                if let Some(&slot) = clock.index.get(&key) {
                    clock.slots[slot].referenced = true;
                    return TryInsert::AlreadyPresent;
                }
                let evicted = clock.insert(key, value);
                TryInsert::Inserted { evicted }
            }
        }
    }

    /// Removes every entry and resets the eviction counter.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Unbounded(map) => map.clear(),
            Inner::Bounded(clock) => {
                clock.slots.clear();
                clock.index.clear();
                clock.hand = 0;
                clock.evictions = 0;
            }
        }
    }

    /// Iterates over every live entry in unspecified order.  Reference
    /// bits are **not** touched: exporting a bounded map (for a snapshot)
    /// must not make every entry look recently used and distort the
    /// eviction order it leaves behind.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        let (unbounded, bounded) = match &self.inner {
            Inner::Unbounded(map) => (Some(map.iter()), None),
            Inner::Bounded(clock) => (None, Some(clock.slots.iter())),
        };
        unbounded.into_iter().flatten().chain(
            bounded
                .into_iter()
                .flatten()
                .map(|slot| (&slot.key, &slot.value)),
        )
    }
}

impl<K: Eq + Hash + Clone, V> BoundedClock<K, V> {
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&slot) = self.index.get(&key) {
            self.slots[slot].value = value;
            self.slots[slot].referenced = true;
            return false;
        }
        if self.slots.len() >= self.capacity {
            // Sweep: clear second-chance bits until an unreferenced slot
            // turns up.  Terminates within two laps — the first lap clears
            // every bit it passes.
            loop {
                if !self.slots[self.hand].referenced {
                    break;
                }
                self.slots[self.hand].referenced = false;
                self.hand = (self.hand + 1) % self.slots.len();
            }
            let victim = self.hand;
            self.index.remove(&self.slots[victim].key);
            self.index.insert(key.clone(), victim);
            self.slots[victim] = Slot {
                key,
                value,
                referenced: true,
            };
            self.hand = (victim + 1) % self.slots.len();
            self.evictions += 1;
            return true;
        }
        self.index.insert(key.clone(), self.slots.len());
        self.slots.push(Slot {
            key,
            value,
            referenced: true,
        });
        false
    }
}

impl<K: Eq + Hash + Clone, V> Default for ClockMap<K, V> {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_map_behaves_like_a_hash_map() {
        let mut map: ClockMap<u32, u32> = ClockMap::unbounded();
        assert!(map.is_empty());
        assert_eq!(map.capacity(), None);
        for i in 0..1000 {
            assert!(!map.insert(i, i * 2));
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.evictions(), 0);
        assert_eq!(map.get(&500), Some(&1000));
        assert_eq!(map.get(&1000), None);
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn bounded_map_never_exceeds_capacity() {
        let mut map: ClockMap<u32, u32> = ClockMap::bounded(8);
        for i in 0..100 {
            map.insert(i, i);
            assert!(map.len() <= 8);
        }
        assert_eq!(map.len(), 8);
        assert_eq!(map.evictions(), 92);
        assert_eq!(map.capacity(), Some(8));
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut map: ClockMap<u32, u32> = ClockMap::bounded(2);
        map.insert(1, 10);
        map.insert(2, 20);
        assert!(!map.insert(1, 11), "overwrite must not evict");
        assert_eq!(map.get(&1), Some(&11));
        assert_eq!(map.get(&2), Some(&20));
        assert_eq!(map.evictions(), 0);
    }

    #[test]
    fn recently_used_entries_get_a_second_chance() {
        let mut map: ClockMap<u32, u32> = ClockMap::bounded(3);
        map.insert(1, 1);
        map.insert(2, 2);
        map.insert(3, 3);
        // One full sweep clears all bits; nothing touched since insert, so
        // the hand evicts slot 0 (key 1) for the newcomer…
        map.insert(4, 4);
        assert_eq!(map.get(&1), None);
        // …then touch 2 so the next insert skips it and recycles 3.
        assert!(map.get(&2).is_some());
        map.insert(5, 5);
        assert!(map.get(&2).is_some(), "touched entry must survive");
        assert_eq!(map.get(&3), None, "cold entry is the victim");
        assert_eq!(map.evictions(), 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut map: ClockMap<u32, u32> = ClockMap::bounded(2);
        map.insert(1, 1);
        map.insert(2, 2);
        map.insert(3, 3);
        assert_eq!(map.evictions(), 1);
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.evictions(), 0);
        map.insert(7, 7);
        assert_eq!(map.get(&7), Some(&7));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = ClockMap::<u32, u32>::bounded(0);
    }

    #[test]
    fn try_insert_keeps_existing_entries() {
        let mut unbounded: ClockMap<u32, u32> = ClockMap::unbounded();
        assert_eq!(
            unbounded.try_insert(1, 10),
            TryInsert::Inserted { evicted: false }
        );
        assert_eq!(unbounded.try_insert(1, 99), TryInsert::AlreadyPresent);
        assert_eq!(unbounded.get(&1), Some(&10), "loser's value is dropped");

        let mut bounded: ClockMap<u32, u32> = ClockMap::bounded(2);
        bounded.insert(1, 1);
        bounded.insert(2, 2);
        assert_eq!(bounded.try_insert(2, 99), TryInsert::AlreadyPresent);
        assert_eq!(
            bounded.try_insert(3, 3),
            TryInsert::Inserted { evicted: true }
        );
        assert_eq!(bounded.len(), 2);
        assert_eq!(bounded.evictions(), 1);
    }

    #[test]
    fn iter_visits_every_entry_without_touching_reference_bits() {
        let mut unbounded: ClockMap<u32, u32> = ClockMap::unbounded();
        unbounded.insert(1, 10);
        unbounded.insert(2, 20);
        let mut entries: Vec<(u32, u32)> = unbounded.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (2, 20)]);

        let mut bounded: ClockMap<u32, u32> = ClockMap::bounded(3);
        bounded.insert(1, 1);
        bounded.insert(2, 2);
        bounded.insert(3, 3);
        // One sweep clears every second-chance bit…
        bounded.insert(4, 4);
        assert_eq!(bounded.evictions(), 1);
        // …then iterating must not set any bit: the next insert still
        // evicts the hand's next unreferenced slot, exactly as if the
        // export had never happened.
        assert_eq!(bounded.iter().count(), 3);
        bounded.insert(5, 5);
        assert_eq!(bounded.evictions(), 2);
        assert_eq!(bounded.len(), 3);
    }

    #[test]
    fn capacity_one_always_holds_the_newest_entry() {
        let mut map: ClockMap<u32, u32> = ClockMap::bounded(1);
        for i in 0..10 {
            map.insert(i, i);
            assert_eq!(map.len(), 1);
            assert_eq!(map.get(&i), Some(&i));
        }
        assert_eq!(map.evictions(), 9);
    }
}
