//! Pareto dominance and fast non-dominated sorting.
//!
//! Implements Equation 1 of the paper (Pareto dominance in a minimisation
//! context) plus Deb's constrained-domination extension and the O(M·N²)
//! fast non-dominated sort from the original NSGA-II paper.

use crate::individual::Individual;

/// Returns `true` when objective vector `u` Pareto-dominates `v` in a
/// minimisation context: `u` is no worse in every objective and strictly
/// better in at least one (Equation 1 of the paper).
///
/// # Panics
///
/// Panics if the two vectors have different lengths or are empty.
pub fn dominates(u: &[f64], v: &[f64]) -> bool {
    assert_eq!(u.len(), v.len(), "objective vectors must have equal length");
    assert!(!u.is_empty(), "objective vectors must not be empty");
    let mut strictly_better = false;
    for (a, b) in u.iter().zip(v.iter()) {
        if a > b {
            return false;
        }
        if a < b {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Deb's constrained-domination rule:
///
/// 1. a feasible solution dominates any infeasible solution,
/// 2. between two infeasible solutions the one with the smaller constraint
///    violation dominates,
/// 3. between two feasible solutions ordinary Pareto dominance applies.
pub fn constrained_dominates(a: &Individual, b: &Individual) -> bool {
    match (a.is_feasible(), b.is_feasible()) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.constraint_violation < b.constraint_violation,
        (true, true) => dominates(&a.objectives, &b.objectives),
    }
}

/// Fast non-dominated sort.  Assigns `rank` to every individual in
/// `population` and returns the fronts as index lists (front 0 first).
///
/// The sort uses [`constrained_dominates`], so infeasible individuals are
/// pushed to later fronts automatically.
pub fn fast_non_dominated_sort(population: &mut [Individual]) -> Vec<Vec<usize>> {
    let n = population.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[i]: how many individuals dominate i.
    // dominates_set[i]: indices that i dominates.
    let mut dominated_by = vec![0usize; n];
    let mut dominates_set: Vec<Vec<usize>> = vec![Vec::new(); n];

    for i in 0..n {
        for j in (i + 1)..n {
            if constrained_dominates(&population[i], &population[j]) {
                dominates_set[i].push(j);
                dominated_by[j] += 1;
            } else if constrained_dominates(&population[j], &population[i]) {
                dominates_set[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }

    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut rank = 0;
    while !current.is_empty() {
        for &i in &current {
            population[i].rank = rank;
        }
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates_set[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(current);
        current = next;
        rank += 1;
    }
    fronts
}

/// Extracts the non-dominated subset of a set of objective vectors
/// (indices into `points`), using plain Pareto dominance.
pub fn non_dominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut result = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && dominates(q, p) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    fn ind(objs: Vec<f64>, violation: f64) -> Individual {
        Individual::new(vec![0.0], Evaluation::new(objs, violation))
    }

    #[test]
    fn dominance_basic_cases() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal: not strict
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dominance_length_mismatch_panics() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn constrained_dominance_prefers_feasible() {
        let feasible = ind(vec![10.0, 10.0], 0.0);
        let infeasible = ind(vec![0.0, 0.0], 1.0);
        assert!(constrained_dominates(&feasible, &infeasible));
        assert!(!constrained_dominates(&infeasible, &feasible));
    }

    #[test]
    fn constrained_dominance_ranks_infeasible_by_violation() {
        let a = ind(vec![5.0], 1.0);
        let b = ind(vec![1.0], 2.0);
        assert!(constrained_dominates(&a, &b));
        assert!(!constrained_dominates(&b, &a));
    }

    #[test]
    fn sort_produces_expected_fronts() {
        // Points: (1,1) dominates everything; (2,3) and (3,2) are mutually
        // non-dominated; (4,4) is dominated by all.
        let mut pop = vec![
            ind(vec![2.0, 3.0], 0.0),
            ind(vec![1.0, 1.0], 0.0),
            ind(vec![3.0, 2.0], 0.0),
            ind(vec![4.0, 4.0], 0.0),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![1]);
        let mut f1 = fronts[1].clone();
        f1.sort_unstable();
        assert_eq!(f1, vec![0, 2]);
        assert_eq!(fronts[2], vec![3]);
        assert_eq!(pop[1].rank, 0);
        assert_eq!(pop[0].rank, 1);
        assert_eq!(pop[3].rank, 2);
    }

    #[test]
    fn sort_handles_empty_population() {
        let mut pop: Vec<Individual> = Vec::new();
        assert!(fast_non_dominated_sort(&mut pop).is_empty());
    }

    #[test]
    fn sort_pushes_infeasible_to_later_fronts() {
        let mut pop = vec![
            ind(vec![0.0, 0.0], 5.0), // infeasible even though objectives are best
            ind(vec![3.0, 3.0], 0.0),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts[0], vec![1]);
        assert_eq!(fronts[1], vec![0]);
    }

    #[test]
    fn non_dominated_indices_extracts_front() {
        let points = vec![
            vec![1.0, 5.0],
            vec![2.0, 2.0],
            vec![5.0, 1.0],
            vec![4.0, 4.0],
        ];
        let nd = non_dominated_indices(&points);
        assert_eq!(nd, vec![0, 1, 2]);
    }

    #[test]
    fn every_individual_is_assigned_exactly_one_front() {
        let mut pop: Vec<Individual> = (0..25)
            .map(|i| {
                let x = f64::from(i) / 24.0;
                ind(vec![x, 1.0 - x + (f64::from(i % 5)) * 0.1], 0.0)
            })
            .collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, pop.len());
        for ind in &pop {
            assert_ne!(ind.rank, usize::MAX);
        }
    }
}
