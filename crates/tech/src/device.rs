//! Device and passive-element statistics.
//!
//! The performance-estimation model (Eq. 5 of the paper) and the behavioural
//! macro simulator need three pieces of device-level information that a PDK
//! would normally supply from measured data:
//!
//! * the unit metal-fringe (MOM) capacitance and its mismatch coefficient κ
//!   (`σ_C = κ·√C`, after Tripathi & Murmann, TCAS-I 2014),
//! * the comparator input-referred noise and offset statistics,
//! * simple square-law transistor parameters used by the netlist templates
//!   to size devices.
//!
//! The synthetic values below are representative of a 28 nm-class process and
//! are the calibration anchors listed in `DESIGN.md`.

use crate::units::{Femtofarad, Nanometer, Volt};
use crate::BOLTZMANN_J_PER_K;

/// Simple transistor model used by netlist templates for device sizing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransistorModel {
    /// Minimum drawn gate length.
    pub min_length: Nanometer,
    /// Minimum drawn gate width.
    pub min_width: Nanometer,
    /// Threshold voltage magnitude.
    pub vth: Volt,
    /// Gate capacitance per µm of width, in fF/µm.
    pub gate_cap_per_um: f64,
    /// On-resistance of a minimum-size device, in kΩ.
    pub ron_min_kohm: f64,
}

impl TransistorModel {
    /// NMOS model of the synthetic S28 technology.
    pub fn s28_nmos() -> Self {
        Self {
            min_length: Nanometer::new(30.0),
            min_width: Nanometer::new(90.0),
            vth: Volt::new(0.35),
            gate_cap_per_um: 1.1,
            ron_min_kohm: 6.5,
        }
    }

    /// PMOS model of the synthetic S28 technology.
    pub fn s28_pmos() -> Self {
        Self {
            min_length: Nanometer::new(30.0),
            min_width: Nanometer::new(120.0),
            vth: Volt::new(0.33),
            gate_cap_per_um: 1.15,
            ron_min_kohm: 9.0,
        }
    }

    /// Gate capacitance in fF of a device `width_multiple` times the minimum
    /// width.
    pub fn gate_cap(&self, width_multiple: f64) -> Femtofarad {
        let width_um = self.min_width.value() / 1000.0 * width_multiple;
        Femtofarad::new(width_um * self.gate_cap_per_um)
    }

    /// On-resistance in kΩ of a device `width_multiple` times the minimum
    /// width (inverse scaling with width).
    ///
    /// # Panics
    ///
    /// Panics if `width_multiple` is not strictly positive.
    pub fn ron_kohm(&self, width_multiple: f64) -> f64 {
        assert!(width_multiple > 0.0, "width multiple must be positive");
        self.ron_min_kohm / width_multiple
    }
}

/// Metal-fringe (MOM) compute-capacitor model with mismatch statistics.
///
/// The compute capacitors C_F are reused as the CDAC capacitors of the SAR
/// ADC (Section 3.1 of the paper), so their matching directly limits SNR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitorModel {
    /// Unit capacitance C_F of one compute capacitor.
    pub unit_cap: Femtofarad,
    /// Mismatch coefficient κ in `σ_C = κ·√C`, with C in fF and σ_C in fF.
    pub kappa: f64,
    /// Area of one unit capacitor in µm².
    pub unit_area_um2: f64,
    /// Parasitic bottom-plate capacitance as a fraction of the unit cap.
    pub bottom_plate_parasitic: f64,
}

impl CapacitorModel {
    /// MOM capacitor model of the synthetic S28 technology.
    pub fn s28_mom() -> Self {
        Self {
            unit_cap: Femtofarad::new(1.2),
            kappa: 0.01,
            unit_area_um2: 0.55,
            bottom_plate_parasitic: 0.05,
        }
    }

    /// Standard deviation of a capacitor made of `units` parallel unit caps,
    /// in fF: `σ = κ·√(units·C_F)`.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn sigma(&self, units: u32) -> Femtofarad {
        assert!(units > 0, "capacitor must contain at least one unit");
        let total = self.unit_cap.value() * f64::from(units);
        Femtofarad::new(self.kappa * total.sqrt())
    }

    /// Relative mismatch `σ_C / C` of a capacitor made of `units` unit caps.
    pub fn relative_sigma(&self, units: u32) -> f64 {
        let total = self.unit_cap.value() * f64::from(units);
        self.sigma(units).value() / total
    }

    /// kT/C thermal-noise voltage standard deviation (in volts) on a
    /// capacitor of `units` unit caps at temperature `temp_k` Kelvin.
    pub fn thermal_noise_sigma_v(&self, units: u32, temp_k: f64) -> f64 {
        let c_farad = self.unit_cap.value() * f64::from(units) * 1e-15;
        (BOLTZMANN_J_PER_K * temp_k / c_farad).sqrt()
    }
}

/// Dynamic-comparator noise/offset model used by the SAR ADC simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparatorModel {
    /// Input-referred noise standard deviation, in volts.
    pub noise_sigma_v: f64,
    /// Input-referred offset standard deviation across instances, in volts.
    pub offset_sigma_v: f64,
    /// Regeneration (decision) time constant, in picoseconds.
    pub regeneration_tau_ps: f64,
}

impl ComparatorModel {
    /// Comparator model of the synthetic S28 technology.
    pub fn s28() -> Self {
        Self {
            noise_sigma_v: 0.35e-3,
            offset_sigma_v: 2.0e-3,
            regeneration_tau_ps: 18.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmos_and_pmos_have_sane_defaults() {
        let n = TransistorModel::s28_nmos();
        let p = TransistorModel::s28_pmos();
        assert!(n.min_length.value() >= 28.0);
        assert!(p.min_width.value() > n.min_width.value());
        assert!(n.vth.value() > 0.2 && n.vth.value() < 0.5);
    }

    #[test]
    fn gate_cap_scales_with_width() {
        let n = TransistorModel::s28_nmos();
        let c1 = n.gate_cap(1.0);
        let c4 = n.gate_cap(4.0);
        assert!((c4.value() / c1.value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ron_scales_inversely_with_width() {
        let n = TransistorModel::s28_nmos();
        assert!((n.ron_kohm(2.0) - n.ron_min_kohm / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width multiple must be positive")]
    fn ron_rejects_zero_width() {
        TransistorModel::s28_nmos().ron_kohm(0.0);
    }

    #[test]
    fn capacitor_mismatch_improves_with_size() {
        let cap = CapacitorModel::s28_mom();
        // σ/C ∝ 1/√C: quadrupling the capacitor halves relative mismatch.
        let r1 = cap.relative_sigma(1);
        let r4 = cap.relative_sigma(4);
        assert!((r1 / r4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn absolute_mismatch_grows_with_sqrt_size() {
        let cap = CapacitorModel::s28_mom();
        let s1 = cap.sigma(1).value();
        let s4 = cap.sigma(4).value();
        assert!((s4 / s1 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn sigma_rejects_zero_units() {
        CapacitorModel::s28_mom().sigma(0);
    }

    #[test]
    fn thermal_noise_matches_ktc_formula() {
        let cap = CapacitorModel::s28_mom();
        // kT/C at 300 K on 1.2 fF: sqrt(1.38e-23*300/1.2e-15) ≈ 1.86 mV.
        let sigma = cap.thermal_noise_sigma_v(1, 300.0);
        assert!((sigma - 1.857e-3).abs() < 0.05e-3, "sigma = {sigma}");
        // Larger capacitor → lower noise.
        assert!(cap.thermal_noise_sigma_v(16, 300.0) < sigma);
    }

    #[test]
    fn comparator_noise_below_offset() {
        let cmp = ComparatorModel::s28();
        assert!(cmp.noise_sigma_v < cmp.offset_sigma_v);
        assert!(cmp.regeneration_tau_ps > 0.0);
    }
}
