//! Layer definitions and layer map.
//!
//! The synthetic technology exposes a conventional planar metal stack
//! (front-end layers plus M1–M6 and the via layers between them), which is
//! what the template-based placer and router consume.  The [`LayerMap`]
//! mirrors the "layer map" technology file mentioned in the paper's inputs:
//! it assigns GDS layer/datatype numbers to every mask layer.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::TechError;
use crate::units::Nanometer;

/// The physical role of a mask layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerKind {
    /// Active diffusion (OD).
    Diffusion,
    /// Polysilicon gate layer.
    Poly,
    /// Contact between front-end layers and metal 1.
    Contact,
    /// A routing metal layer; the payload is the metal index (1-based).
    Metal(u8),
    /// A via layer connecting `Metal(n)` and `Metal(n + 1)`; the payload is
    /// the index of the lower metal layer.
    Via(u8),
    /// N-well marker layer.
    NWell,
    /// P-implant / N-implant marker layers and other non-routing markers.
    Marker,
}

impl LayerKind {
    /// Returns `true` for layers the router may place wires on.
    pub fn is_routing(self) -> bool {
        matches!(self, LayerKind::Metal(_))
    }

    /// Returns `true` for cut (via/contact) layers.
    pub fn is_cut(self) -> bool {
        matches!(self, LayerKind::Via(_) | LayerKind::Contact)
    }

    /// Returns the metal index for metal layers.
    pub fn metal_index(self) -> Option<u8> {
        match self {
            LayerKind::Metal(i) => Some(i),
            _ => None,
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Diffusion => write!(f, "OD"),
            LayerKind::Poly => write!(f, "PO"),
            LayerKind::Contact => write!(f, "CO"),
            LayerKind::Metal(i) => write!(f, "M{i}"),
            LayerKind::Via(i) => write!(f, "VIA{i}"),
            LayerKind::NWell => write!(f, "NW"),
            LayerKind::Marker => write!(f, "MARKER"),
        }
    }
}

/// The purpose of a shape drawn on a layer, mirroring GDS datatypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum LayerPurpose {
    /// Ordinary drawn geometry.
    #[default]
    Drawing,
    /// Pin geometry (connection points exported by a cell).
    Pin,
    /// Text label.
    Label,
    /// Blockage / obstruction geometry.
    Blockage,
}

/// Preferred routing direction of a metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingDirection {
    /// Wires preferentially run left-right.
    Horizontal,
    /// Wires preferentially run bottom-top.
    Vertical,
    /// No preferred direction (e.g. thick top metals used for power).
    Any,
}

/// A single mask layer of the technology.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    gds_layer: u16,
    gds_datatype: u16,
    /// Default wire width used by the router.
    default_width: Nanometer,
    /// Routing pitch (track-to-track distance).
    pitch: Nanometer,
    direction: RoutingDirection,
}

impl Layer {
    /// Creates a new layer description.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        gds_layer: u16,
        gds_datatype: u16,
        default_width: Nanometer,
        pitch: Nanometer,
        direction: RoutingDirection,
    ) -> Self {
        Self {
            name: name.into(),
            kind,
            gds_layer,
            gds_datatype,
            default_width,
            pitch,
            direction,
        }
    }

    /// Layer name, e.g. `"M2"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical role of the layer.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// GDS layer number from the layer map.
    pub fn gds_layer(&self) -> u16 {
        self.gds_layer
    }

    /// GDS datatype number from the layer map.
    pub fn gds_datatype(&self) -> u16 {
        self.gds_datatype
    }

    /// Default (minimum) wire width.
    pub fn default_width(&self) -> Nanometer {
        self.default_width
    }

    /// Routing pitch.
    pub fn pitch(&self) -> Nanometer {
        self.pitch
    }

    /// Preferred routing direction.
    pub fn direction(&self) -> RoutingDirection {
        self.direction
    }
}

/// The complete set of layers of a technology, with name- and kind-based
/// lookup.  Acts as the "layer map" technology-file input of the EasyACIM
/// flow.
#[derive(Debug, Clone, Default)]
pub struct LayerMap {
    layers: Vec<Layer>,
    by_name: BTreeMap<String, usize>,
}

impl LayerMap {
    /// Creates an empty layer map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a layer to the map.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::DuplicateLayer`] when a layer with the same name
    /// already exists.
    pub fn add(&mut self, layer: Layer) -> Result<(), TechError> {
        if self.by_name.contains_key(layer.name()) {
            return Err(TechError::DuplicateLayer(layer.name().to_string()));
        }
        self.by_name
            .insert(layer.name().to_string(), self.layers.len());
        self.layers.push(layer);
        Ok(())
    }

    /// Looks a layer up by name.
    pub fn by_name(&self, name: &str) -> Option<&Layer> {
        self.by_name.get(name).map(|&i| &self.layers[i])
    }

    /// Looks a layer up by kind (first match).
    pub fn by_kind(&self, kind: LayerKind) -> Option<&Layer> {
        self.layers.iter().find(|l| l.kind() == kind)
    }

    /// Returns the metal layer with 1-based index `index`.
    pub fn metal(&self, index: u8) -> Option<&Layer> {
        self.by_kind(LayerKind::Metal(index))
    }

    /// Returns the via layer between metal `index` and metal `index + 1`.
    pub fn via(&self, index: u8) -> Option<&Layer> {
        self.by_kind(LayerKind::Via(index))
    }

    /// Number of routing metal layers.
    pub fn metal_count(&self) -> usize {
        self.layers.iter().filter(|l| l.kind().is_routing()).count()
    }

    /// Total number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the map holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over all layers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter()
    }

    /// Builds the default layer map of the synthetic S28 technology:
    /// OD/PO/CO front-end, six routing metals and the five via layers
    /// between them, plus well/marker layers.
    pub fn s28() -> Self {
        let mut map = Self::new();
        let nm = Nanometer::new;
        let mut push = |layer: Layer| {
            map.add(layer).expect("s28 layer map has unique names");
        };
        push(Layer::new(
            "OD",
            LayerKind::Diffusion,
            6,
            0,
            nm(90.0),
            nm(180.0),
            RoutingDirection::Any,
        ));
        push(Layer::new(
            "PO",
            LayerKind::Poly,
            17,
            0,
            nm(30.0),
            nm(117.0),
            RoutingDirection::Vertical,
        ));
        push(Layer::new(
            "CO",
            LayerKind::Contact,
            30,
            0,
            nm(40.0),
            nm(110.0),
            RoutingDirection::Any,
        ));
        push(Layer::new(
            "NW",
            LayerKind::NWell,
            3,
            0,
            nm(200.0),
            nm(400.0),
            RoutingDirection::Any,
        ));
        // Routing metals: M1/M2 thin, pitch grows with the index as in a
        // typical 28 nm stack; M5/M6 are semi-global layers used for power.
        let metal_specs: [(u8, f64, f64, RoutingDirection); 6] = [
            (1, 50.0, 100.0, RoutingDirection::Horizontal),
            (2, 50.0, 100.0, RoutingDirection::Vertical),
            (3, 56.0, 112.0, RoutingDirection::Horizontal),
            (4, 56.0, 112.0, RoutingDirection::Vertical),
            (5, 90.0, 180.0, RoutingDirection::Horizontal),
            (6, 400.0, 800.0, RoutingDirection::Vertical),
        ];
        for (idx, width, pitch, dir) in metal_specs {
            push(Layer::new(
                format!("M{idx}"),
                LayerKind::Metal(idx),
                30 + u16::from(idx),
                0,
                nm(width),
                nm(pitch),
                dir,
            ));
            if idx < 6 {
                push(Layer::new(
                    format!("VIA{idx}"),
                    LayerKind::Via(idx),
                    50 + u16::from(idx),
                    0,
                    nm(width.min(56.0)),
                    nm(pitch),
                    RoutingDirection::Any,
                ));
            }
        }
        push(Layer::new(
            "MARKER",
            LayerKind::Marker,
            100,
            0,
            nm(10.0),
            nm(10.0),
            RoutingDirection::Any,
        ));
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s28_map_has_six_metals_and_five_vias() {
        let map = LayerMap::s28();
        assert_eq!(map.metal_count(), 6);
        for i in 1..=6u8 {
            assert!(map.metal(i).is_some(), "missing M{i}");
        }
        for i in 1..=5u8 {
            assert!(map.via(i).is_some(), "missing VIA{i}");
        }
        assert!(map.via(6).is_none());
    }

    #[test]
    fn lookup_by_name_and_kind_agree() {
        let map = LayerMap::s28();
        let by_name = map.by_name("M3").expect("M3 exists");
        let by_kind = map.by_kind(LayerKind::Metal(3)).expect("M3 exists");
        assert_eq!(by_name.gds_layer(), by_kind.gds_layer());
        assert_eq!(by_name.name(), "M3");
    }

    #[test]
    fn duplicate_layer_rejected() {
        let mut map = LayerMap::new();
        let layer = Layer::new(
            "M1",
            LayerKind::Metal(1),
            31,
            0,
            Nanometer::new(50.0),
            Nanometer::new(100.0),
            RoutingDirection::Horizontal,
        );
        map.add(layer.clone()).expect("first insert succeeds");
        let err = map.add(layer).expect_err("duplicate must fail");
        assert!(matches!(err, TechError::DuplicateLayer(name) if name == "M1"));
    }

    #[test]
    fn layer_kind_predicates() {
        assert!(LayerKind::Metal(2).is_routing());
        assert!(!LayerKind::Via(2).is_routing());
        assert!(LayerKind::Via(2).is_cut());
        assert!(LayerKind::Contact.is_cut());
        assert_eq!(LayerKind::Metal(4).metal_index(), Some(4));
        assert_eq!(LayerKind::Poly.metal_index(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(LayerKind::Metal(2).to_string(), "M2");
        assert_eq!(LayerKind::Via(3).to_string(), "VIA3");
        assert_eq!(LayerKind::Diffusion.to_string(), "OD");
    }

    #[test]
    fn preferred_directions_alternate() {
        let map = LayerMap::s28();
        assert_eq!(
            map.metal(1).unwrap().direction(),
            RoutingDirection::Horizontal
        );
        assert_eq!(
            map.metal(2).unwrap().direction(),
            RoutingDirection::Vertical
        );
        assert_eq!(
            map.metal(3).unwrap().direction(),
            RoutingDirection::Horizontal
        );
        assert_eq!(
            map.metal(4).unwrap().direction(),
            RoutingDirection::Vertical
        );
    }

    #[test]
    fn gds_numbers_are_unique_per_layer() {
        let map = LayerMap::s28();
        let mut seen = std::collections::BTreeSet::new();
        for layer in map.iter() {
            assert!(
                seen.insert((layer.gds_layer(), layer.gds_datatype())),
                "duplicate GDS number for {}",
                layer.name()
            );
        }
    }
}
