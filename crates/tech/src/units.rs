//! Physical unit newtypes.
//!
//! The flow moves between several unit systems: layout geometry is expressed
//! in nanometres and microns, capacitance in femtofarads, time in picoseconds,
//! energy in femtojoules, and normalised area in F² (squared feature size,
//! the unit used by the paper's "F²/bit" area metric).  Newtypes keep these
//! from being mixed up (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Declares a simple `f64`-backed unit newtype with arithmetic and display.
macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Creates a new value from a raw `f64`.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` when the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

unit_newtype!(
    /// A length in nanometres.  Layout databases in this repository use an
    /// integer-free nanometre grid, but the value is kept as `f64` so that
    /// derived quantities (pitches divided by two, etc.) stay exact enough.
    Nanometer,
    "nm"
);

unit_newtype!(
    /// A length in microns (µm), used for reporting layout dimensions as the
    /// paper does in Figure 8.
    Micron,
    "um"
);

unit_newtype!(
    /// An area in square microns.
    MicronSq,
    "um^2"
);

unit_newtype!(
    /// A normalised area in units of F² (squared minimum feature size).
    /// The paper reports macro density as F²/bit.
    SquareF,
    "F^2"
);

unit_newtype!(
    /// A capacitance in femtofarads.
    Femtofarad,
    "fF"
);

unit_newtype!(
    /// A time duration in picoseconds.
    Picosecond,
    "ps"
);

unit_newtype!(
    /// An energy in femtojoules.
    Femtojoule,
    "fJ"
);

unit_newtype!(
    /// A voltage in volts.
    Volt,
    "V"
);

unit_newtype!(
    /// A ratio expressed in decibels.
    DbValue,
    "dB"
);

unit_newtype!(
    /// A temperature in Kelvin.
    Kelvin,
    "K"
);

unit_newtype!(
    /// A temperature in degrees Celsius.
    Celsius,
    "degC"
);

impl Nanometer {
    /// Converts to microns.
    pub fn to_microns(self) -> Micron {
        Micron(self.0 / 1000.0)
    }
}

impl Micron {
    /// Converts to nanometres.
    pub fn to_nanometers(self) -> Nanometer {
        Nanometer(self.0 * 1000.0)
    }
}

impl Mul for Micron {
    type Output = MicronSq;
    fn mul(self, rhs: Micron) -> MicronSq {
        MicronSq(self.0 * rhs.0)
    }
}

impl Celsius {
    /// Converts to Kelvin.
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + 273.15)
    }
}

impl Kelvin {
    /// Converts to degrees Celsius.
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - 273.15)
    }
}

impl DbValue {
    /// Builds a dB value from a linear power ratio (`10·log10(ratio)`).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive.
    pub fn from_power_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "power ratio must be positive, got {ratio}");
        DbValue(10.0 * ratio.log10())
    }

    /// Converts back to a linear power ratio.
    pub fn to_power_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

/// Converts an area in µm² into F² given the feature size in nanometres.
///
/// This is the normalisation used throughout the paper's evaluation
/// (e.g. "4504 F²/bit" in Figure 8).
pub fn micron_sq_to_square_f(area: MicronSq, feature_nm: f64) -> SquareF {
    let f_um = feature_nm / 1000.0;
    SquareF(area.value() / (f_um * f_um))
}

/// Converts a normalised F² area back into µm² given the feature size.
pub fn square_f_to_micron_sq(area: SquareF, feature_nm: f64) -> MicronSq {
    let f_um = feature_nm / 1000.0;
    MicronSq(area.value() * f_um * f_um)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_nanometers() {
        let a = Nanometer::new(100.0);
        let b = Nanometer::new(28.0);
        assert_eq!((a + b).value(), 128.0);
        assert_eq!((a - b).value(), 72.0);
        assert_eq!((a * 2.0).value(), 200.0);
        assert_eq!((a / 2.0).value(), 50.0);
        assert!((a / b - 100.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn nanometer_micron_roundtrip() {
        let nm = Nanometer::new(2800.0);
        let um = nm.to_microns();
        assert!((um.value() - 2.8).abs() < 1e-12);
        assert!((um.to_nanometers().value() - 2800.0).abs() < 1e-9);
    }

    #[test]
    fn micron_product_is_area() {
        let area = Micron::new(2.0) * Micron::new(3.0);
        assert_eq!(area.value(), 6.0);
    }

    #[test]
    fn db_roundtrip() {
        let db = DbValue::from_power_ratio(100.0);
        assert!((db.value() - 20.0).abs() < 1e-12);
        assert!((db.to_power_ratio() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power ratio must be positive")]
    fn db_from_nonpositive_ratio_panics() {
        let _ = DbValue::from_power_ratio(0.0);
    }

    #[test]
    fn temperature_conversions() {
        let c = Celsius::new(27.0);
        let k = c.to_kelvin();
        assert!((k.value() - 300.15).abs() < 1e-9);
        assert!((k.to_celsius().value() - 27.0).abs() < 1e-9);
    }

    #[test]
    fn f_squared_normalisation_roundtrip() {
        // 1 µm² at F = 28 nm is (1000/28)² ≈ 1275.5 F².
        let area = MicronSq::new(1.0);
        let f2 = micron_sq_to_square_f(area, 28.0);
        assert!((f2.value() - 1275.510204).abs() < 1e-3);
        let back = square_f_to_micron_sq(f2, 28.0);
        assert!((back.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sum_and_ordering() {
        let total: Femtojoule = vec![Femtojoule::new(1.0), Femtojoule::new(2.5)]
            .into_iter()
            .sum();
        assert_eq!(total.value(), 3.5);
        assert!(Femtojoule::new(1.0) < Femtojoule::new(2.0));
        assert_eq!(
            Femtojoule::new(1.0).max(Femtojoule::new(2.0)),
            Femtojoule::new(2.0)
        );
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(format!("{}", Femtofarad::new(1.2)), "1.2fF");
        assert_eq!(format!("{}", Picosecond::new(5.0)), "5ps");
        assert_eq!(format!("{}", SquareF::new(4504.0)), "4504F^2");
    }
}
