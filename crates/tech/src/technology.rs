//! The [`Technology`] aggregate: everything the EasyACIM flow needs to know
//! about the target process.

use crate::device::{CapacitorModel, ComparatorModel, TransistorModel};
use crate::error::TechError;
use crate::layers::LayerMap;
use crate::rules::DesignRules;
use crate::units::{micron_sq_to_square_f, Kelvin, MicronSq, SquareF, Volt};
use crate::{DEFAULT_VCM, DEFAULT_VDD};

/// A complete technology description ("technology files" input of Figure 4).
///
/// # Example
///
/// ```
/// use acim_tech::Technology;
///
/// let tech = Technology::s28();
/// let f2 = tech.normalize_area(acim_tech::MicronSq::new(1.0));
/// assert!(f2.value() > 1000.0);
/// ```
#[derive(Debug, Clone)]
pub struct Technology {
    name: String,
    feature_size_nm: f64,
    vdd: Volt,
    vcm: Volt,
    temperature: Kelvin,
    layers: LayerMap,
    rules: DesignRules,
    nmos: TransistorModel,
    pmos: TransistorModel,
    capacitor: CapacitorModel,
    comparator: ComparatorModel,
}

impl Technology {
    /// Builds the synthetic 28 nm-class technology used throughout the
    /// reproduction (substitute for the paper's TSMC28 PDK).
    pub fn s28() -> Self {
        let layers = LayerMap::s28();
        let rules = DesignRules::s28(&layers);
        Self {
            name: "S28".to_string(),
            feature_size_nm: 28.0,
            vdd: Volt::new(DEFAULT_VDD),
            vcm: Volt::new(DEFAULT_VCM),
            temperature: Kelvin::new(300.0),
            layers,
            rules,
            nmos: TransistorModel::s28_nmos(),
            pmos: TransistorModel::s28_pmos(),
            capacitor: CapacitorModel::s28_mom(),
            comparator: ComparatorModel::s28(),
        }
    }

    /// Builds a scaled variant of the synthetic technology with a different
    /// feature size (used by ablation studies).  All geometric rules are the
    /// S28 rules scaled linearly; device statistics are kept.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] when `feature_size_nm` is not
    /// strictly positive.
    pub fn scaled(feature_size_nm: f64) -> Result<Self, TechError> {
        if feature_size_nm <= 0.0 || !feature_size_nm.is_finite() {
            return Err(TechError::InvalidParameter {
                name: "feature_size".into(),
                reason: "must be a positive finite number of nanometres".into(),
            });
        }
        let mut tech = Self::s28();
        tech.name = format!("S{}", feature_size_nm.round() as u32);
        tech.feature_size_nm = feature_size_nm;
        Ok(tech)
    }

    /// Technology name, e.g. `"S28"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Minimum feature size F in nanometres.
    pub fn feature_size_nm(&self) -> f64 {
        self.feature_size_nm
    }

    /// Nominal supply voltage.
    pub fn vdd(&self) -> Volt {
        self.vdd
    }

    /// Common-mode voltage used by the charge-redistribution compute model.
    pub fn vcm(&self) -> Volt {
        self.vcm
    }

    /// Nominal operating temperature.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Layer map.
    pub fn layers(&self) -> &LayerMap {
        &self.layers
    }

    /// Design rules.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// NMOS transistor model.
    pub fn nmos(&self) -> &TransistorModel {
        &self.nmos
    }

    /// PMOS transistor model.
    pub fn pmos(&self) -> &TransistorModel {
        &self.pmos
    }

    /// Compute/CDAC capacitor model.
    pub fn capacitor(&self) -> &CapacitorModel {
        &self.capacitor
    }

    /// Dynamic-comparator model.
    pub fn comparator(&self) -> &ComparatorModel {
        &self.comparator
    }

    /// Overrides the supply voltage (used by low-voltage sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] when the voltage is not in the
    /// physically sensible range (0.4 V, 1.5 V].
    pub fn with_vdd(mut self, vdd: Volt) -> Result<Self, TechError> {
        if vdd.value() <= 0.4 || vdd.value() > 1.5 {
            return Err(TechError::InvalidParameter {
                name: "vdd".into(),
                reason: format!("{} is outside (0.4 V, 1.5 V]", vdd),
            });
        }
        self.vcm = Volt::new(vdd.value() / 2.0);
        self.vdd = vdd;
        Ok(self)
    }

    /// Overrides the operating temperature.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] when the temperature is not
    /// strictly positive Kelvin.
    pub fn with_temperature(mut self, temperature: Kelvin) -> Result<Self, TechError> {
        if temperature.value() <= 0.0 {
            return Err(TechError::InvalidParameter {
                name: "temperature".into(),
                reason: "must be positive Kelvin".into(),
            });
        }
        self.temperature = temperature;
        Ok(self)
    }

    /// Normalises a physical area to F² using this technology's feature size.
    pub fn normalize_area(&self, area: MicronSq) -> SquareF {
        micron_sq_to_square_f(area, self.feature_size_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s28_defaults() {
        let tech = Technology::s28();
        assert_eq!(tech.name(), "S28");
        assert_eq!(tech.feature_size_nm(), 28.0);
        assert!((tech.vdd().value() - 0.9).abs() < 1e-12);
        assert!((tech.vcm().value() - 0.45).abs() < 1e-12);
        assert!((tech.temperature().value() - 300.0).abs() < 1e-12);
        assert_eq!(tech.layers().metal_count(), 6);
        assert!(tech.rules().rule_count() > 10);
    }

    #[test]
    fn scaled_technology_changes_normalisation() {
        let t28 = Technology::s28();
        let t16 = Technology::scaled(16.0).expect("valid feature size");
        let area = MicronSq::new(2.0);
        assert!(t16.normalize_area(area).value() > t28.normalize_area(area).value());
        assert_eq!(t16.name(), "S16");
    }

    #[test]
    fn scaled_rejects_nonpositive_feature_size() {
        assert!(Technology::scaled(0.0).is_err());
        assert!(Technology::scaled(-5.0).is_err());
        assert!(Technology::scaled(f64::NAN).is_err());
    }

    #[test]
    fn with_vdd_validates_and_recentres_vcm() {
        let tech = Technology::s28()
            .with_vdd(Volt::new(0.8))
            .expect("valid vdd");
        assert!((tech.vdd().value() - 0.8).abs() < 1e-12);
        assert!((tech.vcm().value() - 0.4).abs() < 1e-12);
        assert!(Technology::s28().with_vdd(Volt::new(0.2)).is_err());
        assert!(Technology::s28().with_vdd(Volt::new(2.0)).is_err());
    }

    #[test]
    fn with_temperature_validates() {
        assert!(Technology::s28()
            .with_temperature(Kelvin::new(350.0))
            .is_ok());
        assert!(Technology::s28()
            .with_temperature(Kelvin::new(0.0))
            .is_err());
    }

    #[test]
    fn one_square_micron_in_f2_at_28nm() {
        let tech = Technology::s28();
        let f2 = tech.normalize_area(MicronSq::new(1.0));
        assert!((f2.value() - 1275.51).abs() < 0.1);
    }
}
