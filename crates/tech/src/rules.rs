//! Design rules.
//!
//! A deliberately small but realistic subset of the rules a real DRC deck
//! would contain — exactly the set consumed by the grid-based placer, the
//! router and the lightweight DRC checker in `acim-layout`:
//!
//! * minimum width per layer,
//! * minimum spacing per layer,
//! * via cut size and metal enclosure,
//! * placement site/row grid,
//! * minimum macro-boundary margin.

use std::collections::BTreeMap;

use crate::error::TechError;
use crate::layers::{LayerKind, LayerMap};
use crate::units::Nanometer;

/// Width/spacing rule pair for a single layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleSet {
    /// Minimum drawn width.
    pub min_width: Nanometer,
    /// Minimum same-layer spacing.
    pub min_spacing: Nanometer,
}

impl RuleSet {
    /// Creates a width/spacing rule pair.
    pub fn new(min_width: Nanometer, min_spacing: Nanometer) -> Self {
        Self {
            min_width,
            min_spacing,
        }
    }

    /// Minimum pitch implied by this rule set (width + spacing).
    pub fn min_pitch(&self) -> Nanometer {
        self.min_width + self.min_spacing
    }
}

/// Rules for a via layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaRule {
    /// Square cut size.
    pub cut_size: Nanometer,
    /// Cut-to-cut spacing.
    pub cut_spacing: Nanometer,
    /// Required metal enclosure of the cut on both adjacent metals.
    pub enclosure: Nanometer,
}

impl ViaRule {
    /// Creates a via rule.
    pub fn new(cut_size: Nanometer, cut_spacing: Nanometer, enclosure: Nanometer) -> Self {
        Self {
            cut_size,
            cut_spacing,
            enclosure,
        }
    }

    /// The footprint (edge length) of a single-cut via landing pad.
    pub fn pad_size(&self) -> Nanometer {
        self.cut_size + self.enclosure * 2.0
    }
}

/// The design-rule portion of the technology files.
#[derive(Debug, Clone, Default)]
pub struct DesignRules {
    layer_rules: BTreeMap<String, RuleSet>,
    via_rules: BTreeMap<u8, ViaRule>,
    /// Horizontal placement site width.
    site_width: Nanometer,
    /// Standard placement row height.
    row_height: Nanometer,
    /// Margin kept free around a hierarchical block boundary.
    block_margin: Nanometer,
    /// Uniform routing-grid pitch used by the 3-D grid router.
    routing_grid_pitch: Nanometer,
}

impl DesignRules {
    /// Creates an empty rule deck.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers width/spacing rules for a layer name.
    pub fn set_layer_rule(&mut self, layer: impl Into<String>, rule: RuleSet) {
        self.layer_rules.insert(layer.into(), rule);
    }

    /// Registers the rule for via layer `index` (between metal `index` and
    /// `index + 1`).
    pub fn set_via_rule(&mut self, index: u8, rule: ViaRule) {
        self.via_rules.insert(index, rule);
    }

    /// Looks up the width/spacing rule for a layer name.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::MissingRule`] when the layer has no registered
    /// rule.
    pub fn layer_rule(&self, layer: &str) -> Result<RuleSet, TechError> {
        self.layer_rules
            .get(layer)
            .copied()
            .ok_or_else(|| TechError::MissingRule(layer.to_string()))
    }

    /// Looks up the via rule for via layer `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::MissingRule`] when the via layer has no rule.
    pub fn via_rule(&self, index: u8) -> Result<ViaRule, TechError> {
        self.via_rules
            .get(&index)
            .copied()
            .ok_or_else(|| TechError::MissingRule(format!("VIA{index}")))
    }

    /// Horizontal placement site width.
    pub fn site_width(&self) -> Nanometer {
        self.site_width
    }

    /// Standard-row height.
    pub fn row_height(&self) -> Nanometer {
        self.row_height
    }

    /// Margin kept free around hierarchical block boundaries.
    pub fn block_margin(&self) -> Nanometer {
        self.block_margin
    }

    /// Pitch of the uniform 3-D routing grid.
    pub fn routing_grid_pitch(&self) -> Nanometer {
        self.routing_grid_pitch
    }

    /// Sets the placement grid parameters.
    pub fn set_placement_grid(&mut self, site_width: Nanometer, row_height: Nanometer) {
        self.site_width = site_width;
        self.row_height = row_height;
    }

    /// Sets the hierarchical block margin.
    pub fn set_block_margin(&mut self, margin: Nanometer) {
        self.block_margin = margin;
    }

    /// Sets the uniform routing-grid pitch.
    pub fn set_routing_grid_pitch(&mut self, pitch: Nanometer) {
        self.routing_grid_pitch = pitch;
    }

    /// Returns the number of layers with registered rules.
    pub fn rule_count(&self) -> usize {
        self.layer_rules.len()
    }

    /// Builds the default rule deck of the synthetic S28 technology,
    /// consistent with the [`LayerMap`] produced by `LayerMap::s28()`.
    pub fn s28(layers: &LayerMap) -> Self {
        let nm = Nanometer::new;
        let mut rules = Self::new();
        for layer in layers.iter() {
            let rule = match layer.kind() {
                LayerKind::Diffusion => RuleSet::new(nm(90.0), nm(90.0)),
                LayerKind::Poly => RuleSet::new(nm(30.0), nm(87.0)),
                LayerKind::Contact => RuleSet::new(nm(40.0), nm(70.0)),
                LayerKind::NWell => RuleSet::new(nm(200.0), nm(250.0)),
                LayerKind::Marker => RuleSet::new(nm(10.0), nm(10.0)),
                LayerKind::Metal(i) => {
                    let w = layer.default_width();
                    // Spacing equals width for thin metals, 1.25× for the
                    // thick top metal.
                    let s = if i >= 6 { w * 1.25 } else { w };
                    RuleSet::new(w, s)
                }
                LayerKind::Via(_) => RuleSet::new(layer.default_width(), layer.default_width()),
            };
            rules.set_layer_rule(layer.name(), rule);
            if let LayerKind::Via(i) = layer.kind() {
                rules.set_via_rule(
                    i,
                    ViaRule::new(layer.default_width(), layer.default_width(), nm(15.0)),
                );
            }
        }
        rules.set_placement_grid(nm(100.0), nm(600.0));
        rules.set_block_margin(nm(200.0));
        rules.set_routing_grid_pitch(nm(100.0));
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerMap;

    fn s28_rules() -> DesignRules {
        DesignRules::s28(&LayerMap::s28())
    }

    #[test]
    fn every_s28_layer_has_a_rule() {
        let layers = LayerMap::s28();
        let rules = DesignRules::s28(&layers);
        for layer in layers.iter() {
            assert!(
                rules.layer_rule(layer.name()).is_ok(),
                "missing rule for {}",
                layer.name()
            );
        }
        assert_eq!(rules.rule_count(), layers.len());
    }

    #[test]
    fn missing_rule_is_an_error() {
        let rules = s28_rules();
        let err = rules.layer_rule("M9").expect_err("M9 does not exist");
        assert!(matches!(err, TechError::MissingRule(name) if name == "M9"));
    }

    #[test]
    fn via_rules_exist_for_all_cut_layers() {
        let rules = s28_rules();
        for i in 1..=5u8 {
            let rule = rules.via_rule(i).expect("via rule exists");
            assert!(rule.pad_size().value() > rule.cut_size.value());
        }
        assert!(rules.via_rule(6).is_err());
    }

    #[test]
    fn min_pitch_is_width_plus_spacing() {
        let rule = RuleSet::new(Nanometer::new(50.0), Nanometer::new(60.0));
        assert_eq!(rule.min_pitch().value(), 110.0);
    }

    #[test]
    fn placement_grid_is_positive() {
        let rules = s28_rules();
        assert!(rules.site_width().value() > 0.0);
        assert!(rules.row_height().value() > 0.0);
        assert!(rules.block_margin().value() > 0.0);
        assert!(rules.routing_grid_pitch().value() > 0.0);
    }

    #[test]
    fn thick_top_metal_has_wider_spacing_than_width() {
        let rules = s28_rules();
        let m6 = rules.layer_rule("M6").unwrap();
        assert!(m6.min_spacing.value() > m6.min_width.value());
        let m2 = rules.layer_rule("M2").unwrap();
        assert_eq!(m2.min_spacing.value(), m2.min_width.value());
    }
}
