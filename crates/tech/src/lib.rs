//! # acim-tech
//!
//! Synthetic technology substrate for the EasyACIM reproduction.
//!
//! The original EasyACIM paper is implemented on the proprietary TSMC28 PDK.
//! This crate replaces that gated dependency with a self-contained,
//! 28 nm-class synthetic technology ("S28") that provides everything the rest
//! of the flow actually consumes:
//!
//! * a metal stack and layer map ([`layers`]),
//! * design rules used by the placer, router and DRC checker ([`rules`]),
//! * physical unit newtypes with checked conversions ([`units`]),
//! * device and capacitor statistics (unit MOM capacitance, mismatch
//!   coefficient κ, thermal-noise constants) used by the performance
//!   estimation model and the behavioural simulator ([`device`]),
//! * the [`Technology`] aggregate that bundles all of the above.
//!
//! # Example
//!
//! ```
//! use acim_tech::Technology;
//!
//! let tech = Technology::s28();
//! assert_eq!(tech.feature_size_nm(), 28.0);
//! assert!(tech.layers().metal_count() >= 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod layers;
pub mod rules;
pub mod technology;
pub mod units;

pub use device::{CapacitorModel, ComparatorModel, TransistorModel};
pub use error::TechError;
pub use layers::{Layer, LayerKind, LayerMap, LayerPurpose};
pub use rules::{DesignRules, RuleSet, ViaRule};
pub use technology::Technology;
pub use units::{
    Celsius, DbValue, Femtofarad, Femtojoule, Kelvin, Micron, MicronSq, Nanometer, Picosecond,
    SquareF, Volt,
};

/// Boltzmann constant in J/K, used by thermal (kT/C) noise computations.
pub const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;

/// Default supply voltage of the synthetic 28 nm-class technology, in volts.
pub const DEFAULT_VDD: f64 = 0.9;

/// Default common-mode voltage (V_CM) used by the charge-redistribution
/// compute model, in volts.
pub const DEFAULT_VCM: f64 = 0.45;
