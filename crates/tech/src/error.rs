//! Error types of the technology crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a technology description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TechError {
    /// A layer with the same name was already registered.
    DuplicateLayer(String),
    /// No design rule was registered for the requested layer.
    MissingRule(String),
    /// No layer with the requested name exists in the layer map.
    UnknownLayer(String),
    /// A technology parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::DuplicateLayer(name) => write!(f, "duplicate layer `{name}`"),
            TechError::MissingRule(name) => write!(f, "no design rule registered for `{name}`"),
            TechError::UnknownLayer(name) => write!(f, "unknown layer `{name}`"),
            TechError::InvalidParameter { name, reason } => {
                write!(f, "invalid technology parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TechError::DuplicateLayer("M1".into());
        assert_eq!(e.to_string(), "duplicate layer `M1`");
        let e = TechError::MissingRule("VIA2".into());
        assert!(e.to_string().contains("VIA2"));
        let e = TechError::InvalidParameter {
            name: "feature_size".into(),
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("feature_size"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechError>();
    }
}
