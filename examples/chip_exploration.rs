//! Chip-level co-exploration: macro shape × macro count × buffer sizing
//! for a multi-layer edge CNN.
//!
//! The single-macro flow answers "what is the best macro?"; this example
//! answers the architect's next question: "how many of them, behind how
//! much buffer, serve my *network* best?"  It runs the chip-level NSGA-II
//! exploration twice to demonstrate seed-determinism (the per-layer
//! objective evaluation is rayon-parallel yet bit-reproducible), prints
//! the chip Pareto front, and finally maps the CNN onto the winning macro
//! grid behaviourally, layer by layer.
//!
//! ```bash
//! cargo run --release --example chip_exploration
//! ```

use easyacim::prelude::*;
use easyacim::{chip_frontier_table, chip_report};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::edge_cnn(3);
    println!("target network: {network}");
    for layer in &network.layers {
        let (outputs, dot_length) = layer.shape();
        println!(
            "  {:<8} {:>4} outputs x {:>4}-long dot products",
            layer.name, outputs, dot_length
        );
    }
    println!();

    // Co-explore macro (H, L, B_ADC) x grid (rows, cols) x buffer KiB.
    let mut dse = ChipDseConfig::for_network(network.clone());
    dse.population_size = 48;
    dse.generations = 30;
    let explorer = ChipExplorer::new(dse.clone())?;
    let frontier = explorer.explore()?;
    println!(
        "chip exploration: {} evaluations, {} Pareto-frontier chips",
        frontier.evaluations,
        frontier.len()
    );

    // Determinism: the same seed reproduces the same front even though
    // each objective evaluation fans layers out across worker threads.
    let replay = ChipExplorer::new(dse)?.explore()?;
    let identical = frontier.len() == replay.len()
        && frontier
            .iter()
            .zip(replay.iter())
            .all(|(a, b)| a.objective_vector() == b.objective_vector());
    println!("replay with the same seed is identical: {identical}\n");
    assert!(identical, "chip exploration must be deterministic per seed");

    println!("{}", chip_frontier_table(frontier.points()));

    // Run the full flow stage (exploration + behavioural validation of the
    // best-throughput chip): every CNN layer is tiled across the macro
    // grid and simulated on the behavioural macro model.
    let mut stage = ChipFlowConfig::for_network(network);
    stage.dse.population_size = 48;
    stage.dse.generations = 30;
    let result = ChipFlow::new(stage).run()?;
    println!("{}", chip_report(&result));
    Ok(())
}
