//! Chip-level co-exploration: macro shape × macro count × buffer sizing
//! for a multi-layer edge CNN.
//!
//! The single-macro flow answers "what is the best macro?"; this example
//! answers the architect's next question: "how many of them, behind how
//! much buffer, serve my *network* best?"  It runs the chip-level NSGA-II
//! exploration twice to demonstrate seed-determinism (objective evaluation
//! is population-parallel under rayon yet bit-reproducible), prints the
//! chip Pareto front together with the evaluation-engine stats
//! (evaluations/s, cache hit rate, wall-clock per generation), repeats the
//! search with **heterogeneous grids** (per-tile macro genes, so NSGA-II
//! can mix macro shapes across the chip), and finally maps the CNN onto
//! the winning macro grid behaviourally, layer by layer.
//!
//! ```bash
//! cargo run --release --example chip_exploration
//! # tiny budget (used by the CI smoke job):
//! cargo run --release --example chip_exploration -- --quick
//! ```

use easyacim::prelude::*;
use easyacim::{chip_frontier_table, chip_report};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--quick` shrinks the budget so CI can exercise the full parallel
    // path (batch evaluation, caching, heterogeneous genomes) in seconds.
    let quick = std::env::args().any(|arg| arg == "--quick");
    let (population_size, generations) = if quick { (16, 6) } else { (48, 30) };

    // Surface the effective parallelism so smoke logs prove the parallel
    // path was exercised (CI pins it via RAYON_NUM_THREADS).
    println!(
        "rayon worker threads: {} (override with {})",
        rayon::current_num_threads(),
        rayon::NUM_THREADS_ENV,
    );

    let network = Network::edge_cnn(3);
    println!("target network: {network}");
    for layer in &network.layers {
        let (outputs, dot_length) = layer.shape();
        println!(
            "  {:<8} {:>4} outputs x {:>4}-long dot products",
            layer.name, outputs, dot_length
        );
    }
    println!();

    // Co-explore macro (H, L, B_ADC) x grid (rows, cols) x buffer KiB.
    let mut dse = ChipDseConfig::for_network(network.clone());
    dse.population_size = population_size;
    dse.generations = generations;
    let explorer = ChipExplorer::new(dse.clone())?;
    let frontier = explorer.explore()?;
    println!(
        "chip exploration: {} evaluations, {} Pareto-frontier chips",
        frontier.engine.evaluations,
        frontier.len()
    );
    println!(
        "evaluation engine: {:.0} evals/s, cache {}, {:.1} ms mean per generation",
        frontier.engine.evaluations_per_second(),
        frontier.engine.cache,
        frontier.engine.mean_generation_seconds() * 1e3,
    );

    // Determinism: the same seed reproduces the same front even though
    // each generation fans its objective evaluations out across worker
    // threads and re-sampled designs are answered from the cache.
    let replay = ChipExplorer::new(dse.clone())?.explore()?;
    let identical = frontier.len() == replay.len()
        && frontier
            .iter()
            .zip(replay.iter())
            .all(|(a, b)| a.objective_vector() == b.objective_vector());
    println!("replay with the same seed is identical: {identical}\n");
    assert!(identical, "chip exploration must be deterministic per seed");

    println!("{}", chip_frontier_table(frontier.points()));

    // Heterogeneous grids: every grid position gets its own macro genes,
    // so the explorer can pair high-SNR macros with long-local-array ones
    // on a single chip.
    let mut hetero = dse;
    hetero.heterogeneous = true;
    let hetero_frontier = ChipExplorer::new(hetero)?.explore()?;
    let mixed = hetero_frontier
        .iter()
        .filter(|p| !p.chip.grid.is_uniform())
        .count();
    println!(
        "heterogeneous exploration: {} evaluations, {} frontier chips ({} mixed-macro), cache {}",
        hetero_frontier.engine.evaluations,
        hetero_frontier.len(),
        mixed,
        hetero_frontier.engine.cache,
    );
    println!("{}", chip_frontier_table(hetero_frontier.points()));

    // Run the full flow stage (exploration + behavioural validation of the
    // best-throughput chip): every CNN layer is tiled across the macro
    // grid and simulated on the behavioural macro model.
    let mut stage = ChipFlowConfig::for_network(network);
    stage.dse.population_size = population_size;
    stage.dse.generations = generations;
    let result = ChipFlow::new(stage).run()?;
    println!("{}", chip_report(&result));
    Ok(())
}
