//! Template-based netlist and layout generation for a hand-picked
//! specification, with SPICE / DEF / GDS-text output and a DRC run —
//! the back half of the EasyACIM flow in isolation.
//!
//! ```bash
//! cargo run --release --example layout_generation
//! ```

use std::fs;

use acim_layout::{check_layout, write_def, write_gds_text};
use acim_netlist::design_stats;
use easyacim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 8(b) design point: 16 kb, 128 x 128, L = 8, B_ADC = 3.
    let spec = AcimSpec::from_dimensions(128, 128, 8, 3)?;
    let tech = Technology::s28();
    let library = CellLibrary::s28_default(&tech);

    // Template-based netlist generation.
    let netlist = NetlistGenerator::new(&library).generate(&spec)?;
    let stats = design_stats(&netlist, &library)?;
    println!(
        "netlist `{}`: {} SRAM cells, {} compute cells, {} transistors, {} capacitors",
        netlist.name(),
        stats.sram_cells,
        stats.compute_cells,
        stats.transistors,
        stats.capacitors
    );

    // Template-based hierarchical placement and routing.
    let macro_layout = LayoutFlow::new(&tech, &library).generate(&spec)?;
    let m = &macro_layout.metrics;
    println!(
        "layout core: {:.0} x {:.0} um = {:.0} F2/bit (paper figure 8(b): 256 x 131 um, 2610 F2/bit)",
        m.core_width_um, m.core_height_um, m.core_area_f2_per_bit
    );
    println!(
        "routing: {:.0} um of wire, {} vias, {} placed instances",
        m.wirelength_um, m.via_count, m.instance_count
    );

    // Lightweight DRC on the column template (the repeated tile).
    let report = check_layout(&macro_layout.column.layout, &tech);
    println!(
        "column-template DRC: {} objects checked, {} violations",
        report.checked_objects,
        report.violations.len()
    );

    // Emit the exchange files.
    let out_dir = std::path::Path::new("results");
    fs::create_dir_all(out_dir)?;
    fs::write(
        out_dir.join("figure8b.spice"),
        write_spice(&netlist, &library)?,
    )?;
    fs::write(
        out_dir.join("figure8b.def"),
        write_def(&macro_layout.layout),
    )?;
    fs::write(
        out_dir.join("figure8b.gds.txt"),
        write_gds_text(&macro_layout.layout, &tech),
    )?;
    println!("wrote results/figure8b.spice, results/figure8b.def, results/figure8b.gds.txt");
    Ok(())
}
