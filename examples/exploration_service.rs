//! The multi-tenant exploration service: N concurrent mixed macro/chip
//! requests against shared per-design-space caches, then a warm-started
//! follow-up request.
//!
//! One `ExplorationService` owns one evaluation cache per design space.
//! The example submits a full macro flow and two chip-composition
//! requests **concurrently** (the two chip requests share one space, so
//! the slower one reads entries the faster one wrote), watches their
//! progress through the job handles, and finally re-runs the chip
//! exploration **warm-started** from the first session's Pareto archive —
//! demonstrating cross-request cache hits and the seeded-population path.
//!
//! ```bash
//! cargo run --release --example exploration_service
//! # tiny budget (used by the CI smoke job):
//! cargo run --release --example exploration_service -- --quick
//! # bound the shared caches (exercises CLOCK eviction; the CI smoke job
//! # runs this to prove bounded caches change counters, not results):
//! cargo run --release --example exploration_service -- --quick --cache-cap 48
//! # oversubscribe the worker set ~4x and prove — via the telemetry
//! # gauges — that the scheduler never runs more jobs than workers:
//! cargo run --release --example exploration_service -- --quick --oversubscribe
//! # dump the service's telemetry (Prometheus text exposition) at exit:
//! cargo run --release --example exploration_service -- --quick --telemetry
//! # persistence round trip: write a snapshot at exit, then restart from
//! # it (the CI smoke job chains exactly these two invocations):
//! cargo run --release --example exploration_service -- --quick --snapshot /tmp/easyacim.snap
//! cargo run --release --example exploration_service -- --quick --restore /tmp/easyacim.snap
//! ```

use easyacim::chip_report;
use easyacim::prelude::*;
use easyacim::service::{ExplorationRequest, ExplorationService, ServiceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|arg| arg == "--quick");
    let telemetry = args.iter().any(|arg| arg == "--telemetry");
    let oversubscribe = args.iter().any(|arg| arg == "--oversubscribe");
    let cache_cap: Option<usize> = args.iter().position(|arg| arg == "--cache-cap").map(|i| {
        let cap: usize = args
            .get(i + 1)
            .expect("--cache-cap requires a value")
            .parse()
            .expect("--cache-cap takes a positive integer");
        assert!(cap > 0, "--cache-cap takes a positive integer, got 0");
        cap
    });
    let path_arg = |flag: &str| {
        args.iter().position(|arg| arg == flag).map(|i| {
            std::path::PathBuf::from(
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} requires a path")),
            )
        })
    };
    let snapshot_path = path_arg("--snapshot");
    let restore_path = path_arg("--restore");
    let (population_size, generations) = if quick { (16, 6) } else { (40, 24) };

    println!(
        "rayon worker threads: {} (override with {})",
        rayon::current_num_threads(),
        rayon::NUM_THREADS_ENV,
    );

    // One macro-flow request…
    let mut flow = FlowConfig::new(4 * 1024);
    flow.dse.population_size = population_size;
    flow.dse.generations = generations;
    flow.max_layouts = 1;

    // …and two identical chip requests over one design space.
    let mut chip = ChipFlowConfig::for_network(Network::edge_cnn(if quick { 1 } else { 3 }));
    chip.dse.population_size = population_size;
    chip.dse.generations = generations;
    chip.validate_best = false;

    let service_config = match cache_cap {
        // Evaluation caches at the requested bound; macro-metric caches
        // far smaller (they hold distinct macro *shapes*, a much smaller
        // population than distinct genomes).
        Some(cap) => {
            println!(
                "bounded caches: {cap} evaluations / {} macro metrics per store",
                (cap / 8).max(2)
            );
            ServiceConfig::bounded(cap, (cap / 8).max(2))
        }
        None => ServiceConfig::default(),
    };
    let service = ExplorationService::with_config(service_config);
    println!(
        "scheduler: {} workers, admission queue capacity {}",
        service.worker_count(),
        service.queue_capacity(),
    );

    // Restore a previous process's snapshot before any work: caches and
    // session archives merge in, and the requests below start warm.  Any
    // unreadable or corrupted file is a typed rejection and a clean cold
    // start — never a crash.
    if let Some(path) = &restore_path {
        match service.restore(path) {
            Ok(report) => println!("restored {}: {report}", path.display()),
            Err(err) => println!(
                "restore of {} rejected ({}), continuing cold: {err}",
                path.display(),
                err.reason()
            ),
        }
    }

    // The baseline workload: one high-priority macro flow plus two
    // identical chip requests.  With `--oversubscribe`, pile enough
    // extra chip jobs on top to oversubscribe the worker set ~4x — the
    // bounded scheduler queues the excess instead of spawning threads.
    let mut handles = vec![
        service.submit(
            ExplorationRequest::macro_space(flow)
                .priority(Priority::High)
                .label("macro"),
        )?,
        service.submit(ExplorationRequest::chip_space(chip.clone()).label("chip-a"))?,
        service.submit(ExplorationRequest::chip_space(chip.clone()).label("chip-b"))?,
    ];
    if oversubscribe {
        let extra = (service.worker_count() * 4)
            .saturating_sub(handles.len())
            .min(service.queue_capacity());
        for i in 0..extra {
            handles.push(
                service.submit(
                    ExplorationRequest::chip_space(chip.clone())
                        .priority(Priority::Low)
                        .label(format!("backlog-{i}")),
                )?,
            );
        }
    }
    println!("submitted {} concurrent requests:", handles.len());
    for handle in &handles {
        println!(
            "  job {} over space {} ({}, priority {})",
            handle.id(),
            handle.space(),
            handle.label().unwrap_or("unlabelled"),
            handle.priority(),
        );
    }

    // Observe progress until every job finishes (the handles' counters
    // are fed by the per-generation observer of the NSGA-II loop).  The
    // `service_active_jobs` gauge must never exceed the worker count —
    // that is the scheduler's whole admission-control contract.
    let mut max_active: f64 = 0.0;
    loop {
        let all_done = handles.iter().all(easyacim::JobHandle::is_finished);
        let snapshot = service.telemetry();
        if let Some(active) = snapshot.gauge("service_active_jobs", &[]) {
            max_active = max_active.max(active);
            assert!(
                active <= service.worker_count() as f64,
                "active jobs ({active}) exceeded the worker set ({})",
                service.worker_count()
            );
        }
        let status: Vec<String> = handles
            .iter()
            .map(|handle| format!("job {} {}", handle.id(), handle.progress()))
            .collect();
        println!("progress: {}", status.join("  "));
        if all_done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(if quick {
            25
        } else {
            250
        }));
    }
    if oversubscribe {
        assert!(
            max_active >= 1.0,
            "the gauge never observed a running job — sampling too coarse"
        );
        println!(
            "oversubscription held: max {max_active:.0} active jobs across {} submissions \
             (worker set: {})",
            handles.len(),
            service.worker_count(),
        );
    }

    let mut chip_session = None;
    let chip_space = handles[1].space().to_string();
    for handle in handles {
        let id = handle.id();
        match handle.join()? {
            ExplorationResponse::Macro(response) => {
                let result = &response.result;
                println!(
                    "job {id} (macro flow): {} frontier points, {} layouts, cache {}, {}",
                    result.frontier.len(),
                    result.designs.len(),
                    result.engine.cache,
                    result.engine.pool,
                );
            }
            ExplorationResponse::Chip(response) => {
                let result = &response.result;
                println!(
                    "job {id} (chip): {} frontier chips, {} evaluations, cache {}, {}",
                    result.front.len(),
                    result.engine.evaluations,
                    result.engine.cache,
                    result.engine.pool,
                );
                chip_session = Some(response.session);
            }
        }
    }
    println!(
        "service caches: {} distinct designs across {} design spaces, \
         {} distinct macro metrics, {} evictions",
        service.cached_evaluations(),
        service.spaces().len(),
        service.cached_macro_metrics(),
        service.total_evictions(),
    );
    if let Some(cap) = cache_cap {
        assert!(
            service.cached_evaluations() <= cap * service.spaces().len(),
            "bounded stores must respect their capacity"
        );
        assert!(
            service.total_evictions() > 0,
            "a small bound over this workload must evict"
        );
    }

    // Warm start: seed a follow-up request from the finished session's
    // Pareto archive.  Over the now-populated shared cache the warm run's
    // evaluations are answered almost entirely from memory.
    let session = chip_session.expect("a chip request ran");
    println!(
        "\nwarm-starting a follow-up chip request from {} archived genomes",
        session.len()
    );
    let warm = service
        .run(
            ExplorationRequest::chip_space(chip.clone())
                .warm_start(session)
                .priority(Priority::High)
                .label("warm"),
        )?
        .into_chip()
        .expect("chip request yields a chip response");
    println!(
        "warm run: {} frontier chips, cache {} ({} cross-request entries reused)",
        warm.result.front.len(),
        warm.result.engine.cache,
        warm.result.engine.cache.hits,
    );
    assert!(
        warm.result.engine.cache.hits > 0,
        "warm run must reuse cross-request cache entries"
    );
    println!("\n{}", chip_report(&warm.result));

    // Persistence round trip: snapshot everything warm about the service,
    // then simulate a process restart — a brand-new service restores the
    // file and re-runs the follow-up request, answered from the restored
    // caches instead of from scratch.
    if let Some(path) = &snapshot_path {
        let report = service.snapshot(path)?;
        println!("\nsnapshot written to {}: {report}", path.display());

        let restarted = ExplorationService::with_config(service_config);
        let restored = restarted.restore(path)?;
        println!("\"restarted\" service restored: {restored}");
        let archive = restarted
            .archive(&chip_space)
            .expect("the snapshot carried the chip space's session archive");
        let rerun = restarted
            .run(
                ExplorationRequest::chip_space(chip)
                    .warm_start(archive)
                    .label("restored-warm"),
            )?
            .into_chip()
            .expect("chip request yields a chip response");
        println!(
            "restored warm run: {} frontier chips, cache {}",
            rerun.result.front.len(),
            rerun.result.engine.cache,
        );
        assert!(
            rerun.result.engine.cache.hits > 0,
            "a restored service must answer the warm re-run from its caches"
        );
    }

    if telemetry {
        // Everything the service observed, in Prometheus text exposition
        // (scrapeable verbatim) — request counters and latency
        // histograms, queue/active gauges, per-space cache hit rates,
        // per-generation histograms and the worker-pool bridge.
        println!("--- telemetry (prometheus text exposition) ---");
        print!("{}", easyacim::prometheus_text(&service.telemetry()));
    }
    Ok(())
}
