//! Agile design-space exploration and user distillation for three
//! application scenarios (the motivation of Figure 1).
//!
//! The example explores a 16 kb array once, then distils the Pareto
//! frontier three times with different requirement profiles — a
//! high-accuracy transformer, a balanced CNN and an efficiency-first SNN —
//! showing how the same frontier serves very different operating points.
//!
//! ```bash
//! cargo run --release --example pareto_exploration
//! ```

use easyacim::frontier_table;
use easyacim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = DseConfig {
        array_size: 16 * 1024,
        population_size: 60,
        generations: 40,
        ..DseConfig::default()
    };
    let explorer = DesignSpaceExplorer::new(config)?;
    let frontier = explorer.explore()?;
    println!(
        "explored a 16 kb array: {} evaluations, {} Pareto-frontier points\n",
        frontier.engine.evaluations,
        frontier.len()
    );
    println!("{}", frontier_table(frontier.points()));

    let scenarios = [
        (
            "transformer (accuracy-first)",
            UserRequirements {
                min_snr_db: Some(ApplicationProfile::Transformer.min_snr_db()),
                min_throughput_tops: Some(ApplicationProfile::Transformer.min_throughput_tops()),
                ..UserRequirements::none()
            },
        ),
        (
            "cnn (balanced)",
            UserRequirements {
                min_snr_db: Some(ApplicationProfile::Cnn.min_snr_db()),
                min_throughput_tops: Some(ApplicationProfile::Cnn.min_throughput_tops()),
                min_tops_per_watt: Some(ApplicationProfile::Cnn.min_tops_per_watt()),
                ..UserRequirements::none()
            },
        ),
        (
            "snn (efficiency-first)",
            UserRequirements {
                min_tops_per_watt: Some(ApplicationProfile::Snn.min_tops_per_watt()),
                ..UserRequirements::none()
            },
        ),
    ];

    for (name, requirements) in scenarios {
        let distilled = requirements.distill(frontier.points());
        println!(
            "user distillation for {name}: {} of {} points survive",
            distilled.len(),
            frontier.len()
        );
        if let Some(best) = distilled.first() {
            println!("  e.g. {best}");
        }
        println!();
    }
    Ok(())
}
