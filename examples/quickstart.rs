//! Quickstart: run the complete EasyACIM flow on a 4 kb array.
//!
//! The flow mirrors Figure 4 of the paper: design-space exploration with
//! NSGA-II, user distillation, template-based netlist generation and
//! template-based hierarchical placement & routing.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use easyacim::report::flow_summary;
use easyacim::{FlowConfig, FlowError, TopFlowController};

fn main() -> Result<(), FlowError> {
    // 1. Configure the flow: user-defined array size plus exploration
    //    settings.  The defaults match the paper's setup (B_ADC <= 8,
    //    L in [2, 32]); the population/generation counts are reduced here so
    //    the example finishes in seconds.
    let mut config = FlowConfig::new(4 * 1024);
    config.dse.population_size = 40;
    config.dse.generations = 25;
    config.max_layouts = 2;

    // 2. Run it.
    let controller = TopFlowController::new(config)?;
    let result = controller.run()?;

    // 3. Report.
    println!("{}", flow_summary(&result));
    println!("Pareto frontier ({} points):", result.frontier.len());
    println!("{}", easyacim::frontier_table(&result.frontier));
    Ok(())
}
