//! Mapping application workloads onto candidate macros (Figure 1's
//! motivation, measured): a transformer attention projection, a CNN layer
//! and an SNN timestep are run on the behavioural simulator of two very
//! different design points, showing why a single fixed macro cannot serve
//! all three applications well.
//!
//! ```bash
//! cargo run --release --example application_mapping
//! ```

use easyacim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two corners of the 16 kb design space: an accuracy-oriented point
    // (high B_ADC, short dot product) and an efficiency-oriented point
    // (low B_ADC, long dot product).
    let accurate = AcimSpec::from_dimensions(128, 128, 8, 4)?;
    let efficient = AcimSpec::from_dimensions(512, 32, 4, 2)?;
    let params = ModelParams::s28_default();

    println!("candidate macros:");
    for (name, spec) in [
        ("accuracy-oriented", &accurate),
        ("efficiency-oriented", &efficient),
    ] {
        let metrics = evaluate(spec, &params)?;
        println!(
            "  {name:<22} {spec}  SNR {:.1} dB, {:.0} TOPS/W, {:.0} F2/bit",
            metrics.snr_db, metrics.tops_per_watt, metrics.area_f2_per_bit
        );
    }
    println!();

    println!(
        "{:<14} {:<22} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "application", "macro", "cycles", "latency(ns)", "energy(nJ)", "rel. error", "meets?"
    );
    for profile in ApplicationProfile::all() {
        let workload = profile.representative_workload(2024)?;
        for (name, spec) in [
            ("accuracy-oriented", &accurate),
            ("efficiency-oriented", &efficient),
        ] {
            let report = MacroMapper::new(spec)?.run(&workload, 7)?;
            let meets = report.relative_error <= profile.max_relative_error();
            println!(
                "{:<14} {:<22} {:>10} {:>12.1} {:>12.3} {:>14.4} {:>10}",
                profile.name(),
                name,
                report.cycles,
                report.latency_ns,
                report.energy_fj / 1e6,
                report.relative_error,
                if meets { "yes" } else { "no" }
            );
        }
    }
    println!();
    println!("the accuracy-oriented macro serves the transformer but wastes energy on the SNN;");
    println!("the efficiency-oriented macro is the other way round - the gap EasyACIM closes by");
    println!("generating a purpose-built macro per application from the same synthesizable architecture.");
    Ok(())
}
