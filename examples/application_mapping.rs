//! Mapping a multi-tenant application mix onto one chip (Figure 1's
//! motivation, measured end-to-end): a recognition CNN and a transformer
//! attention block time-share a macro grid.  The example scores the mix
//! on a fixed chip (co-scheduled vs. each tenant alone), proves the
//! mix-of-one path is bit-identical to the single-network evaluator, then
//! runs a mix-aware chip exploration through the service and prints the
//! per-tenant report and telemetry rows.
//!
//! ```bash
//! cargo run --release --example application_mapping -- --quick
//! ```

use easyacim::prelude::*;
use easyacim::report::chip_report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--quick` shrinks the exploration budget so CI can exercise the
    // whole mix path (scheduling, per-tenant scoring, service, report,
    // telemetry) in seconds.
    let quick = std::env::args().any(|arg| arg == "--quick");

    // The deployment of the paper's Figure 1 that actually shares a chip:
    // bulk CNN recognition traffic plus an occasional transformer block.
    // Weights are relative arrival rates.
    let cnn = Network::edge_cnn(2);
    let transformer = Network::transformer_block();
    let mix = WorkloadMix::new("cnn+transformer")
        .with_tenant(cnn.clone(), 2.0)
        .with_tenant(transformer.clone(), 1.0);

    // --- 1. One fixed chip, each tenant alone vs. co-scheduled. --------
    let chip = ChipSpec::new(
        MacroGrid::uniform(2, 2, AcimSpec::from_dimensions(128, 32, 4, 4)?)?,
        64,
    )?;
    println!(
        "fixed chip: {}x{} grid of 128x32 L=4 B=4 macros, {} KiB buffer",
        chip.grid.rows(),
        chip.grid.cols(),
        chip.buffer_kib
    );

    let mut sequential_ns = 0.0;
    for (name, network) in [("cnn", &cnn), ("transformer", &transformer)] {
        let alone = evaluate_chip(&chip, network)?;
        sequential_ns += alone.latency_ns;
        println!(
            "  {name:<12} alone: {:>8.1} ns, {:.3} TOPS, {:.1} pJ/inf",
            alone.latency_ns, alone.throughput_tops, alone.energy_per_inference_pj
        );
        // The refactor's safety net: a mix of one tenant is bit-identical
        // to the single-network path.
        let single = evaluate_chip_mix(&chip, &WorkloadMix::single(network.clone()))?.combined();
        assert_eq!(
            single.latency_ns.to_bits(),
            alone.latency_ns.to_bits(),
            "mix-of-one must stay bit-identical"
        );
    }

    let co = evaluate_chip_mix(&chip, &mix)?;
    println!(
        "  co-scheduled: makespan {:>8.1} ns (sequential would be {:.1} ns), {:.1} pJ total",
        co.makespan_ns, sequential_ns, co.total_energy_pj
    );
    for tenant in &co.tenants {
        println!(
            "    {:<18} w={:<4} {:>8.1} ns, {:.3} TOPS, acc {:.1} dB, {} macro reads",
            tenant.name,
            tenant.weight,
            tenant.metrics.latency_ns,
            tenant.metrics.throughput_tops,
            tenant.metrics.accuracy_db,
            tenant.macro_reads
        );
    }
    assert_eq!(co.tenants.len(), 2);
    println!();

    // --- 2. Mix-aware chip exploration through the service. ------------
    let mut config = ChipFlowConfig::for_mix(mix.clone());
    if quick {
        config.dse.population_size = 16;
        config.dse.generations = 5;
        config.dse.grid_rows = vec![1, 2];
        config.dse.grid_cols = vec![1, 2];
        config.dse.buffer_kib = vec![8, 32];
    }

    let service = ExplorationService::new();
    let response = service
        .run(ExplorationRequest::chip_space(config).label("cnn+transformer-mix"))?
        .into_chip()
        .expect("chip request yields a chip response");

    let report = chip_report(&response.result);
    print!("{report}");
    assert!(!response.result.front.is_empty());
    for point in &response.result.front {
        assert_eq!(
            point.tenants.len(),
            2,
            "every frontier point carries both tenants"
        );
    }
    assert!(report.contains("per-tenant breakdown"));
    let validation = response
        .result
        .mix_validation
        .as_ref()
        .expect("mix validation runs the interleaved stream simulator");
    assert_eq!(validation.tenants.len(), 2);
    assert!(validation.max_relative_error() < 0.5);

    // The service telemetry carries the multi-tenant rows: a tenant-count
    // gauge per chip space and a latency histogram per tenant.
    let space = response.session.space().to_string();
    let snapshot = service.telemetry();
    assert_eq!(
        snapshot.gauge("chip_tenants", &[("space", space.as_str())]),
        Some(2.0)
    );
    for tenant in [cnn.name.as_str(), transformer.name.as_str()] {
        let histogram = snapshot
            .histogram(
                "chip_tenant_latency_seconds",
                &[("space", space.as_str()), ("tenant", tenant)],
            )
            .expect("per-tenant latency series");
        assert_eq!(histogram.count, 1);
        println!(
            "telemetry: chip_tenant_latency_seconds{{tenant={tenant}}} sum {:.1} ns",
            histogram.sum * 1e9
        );
    }
    println!(
        "multi-tenant mix demo passed: {} frontier chips",
        response.result.front.len()
    );
    Ok(())
}
