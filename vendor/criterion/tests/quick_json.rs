//! The CI hooks of the criterion shim: `ACIM_BENCH_QUICK` caps sample
//! counts, `ACIM_BENCH_JSON` appends machine-readable medians.  Own
//! integration-test process so the env mutations cannot leak into the
//! shim's unit tests.

use criterion::Criterion;

#[test]
fn quick_mode_caps_samples_and_json_lines_are_appended() {
    let json_path =
        std::env::temp_dir().join(format!("acim-criterion-shim-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&json_path);
    std::env::set_var("ACIM_BENCH_QUICK", "1");
    std::env::set_var("ACIM_BENCH_JSON", &json_path);

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("shimgate");
    group.sample_size(10);
    let mut runs = 0usize;
    group.bench_function("quick", |b| {
        b.iter(|| {
            runs += 1;
            runs
        })
    });
    group.finish();

    // 10 requested samples capped to 3 (+1 warm-up run).
    assert_eq!(runs, 4, "quick mode must cap samples at 3 plus 1 warm-up");

    let json = std::fs::read_to_string(&json_path).expect("json file written");
    let lines: Vec<&str> = json.lines().collect();
    assert_eq!(lines.len(), 1, "one bench -> one JSON line: {json}");
    assert!(
        lines[0].starts_with("{\"id\":\"shimgate/quick\",\"median_ns\":"),
        "unexpected line: {}",
        lines[0]
    );
    assert!(lines[0].ends_with('}'));

    // Re-running appends (the gate keeps the last entry per id).
    criterion.bench_function("shimgate/again", |b| b.iter(|| 1 + 1));
    let json = std::fs::read_to_string(&json_path).expect("json file still there");
    assert_eq!(json.lines().count(), 2, "reports append: {json}");

    let _ = std::fs::remove_file(&json_path);
}
