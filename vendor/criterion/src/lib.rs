//! Offline vendored shim of the `criterion` API surface used by this
//! workspace's benchmarks.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a minimal wall-clock harness with criterion's call shapes
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_custom`).  It
//! performs a short warm-up, then times `sample_size` batches and reports
//! the median time per iteration to stdout — enough to serve as a perf
//! baseline between PRs, without criterion's statistical machinery.
//!
//! Two environment variables hook the harness into CI's bench-regression
//! gate:
//!
//! * `ACIM_BENCH_QUICK` — any non-empty value other than `0` caps every
//!   benchmark at 3 samples (and one warm-up), so a
//!   CI job can sweep the whole suite in seconds.
//! * `ACIM_BENCH_JSON` — a path; every reported median is also appended
//!   there as one JSON line `{"id":"group/name","median_ns":1234}`, the
//!   machine-readable feed the `bench_gate` binary compares against the
//!   checked-in baseline JSONs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Sample cap applied when `ACIM_BENCH_QUICK` is set: enough for a stable
/// median against the regression gate's tolerance, small enough that CI
/// sweeps the whole suite in seconds.
const QUICK_SAMPLE_SIZE: usize = 3;

/// `true` when `ACIM_BENCH_QUICK` asks for capped sample counts.
fn quick_mode() -> bool {
    matches!(std::env::var("ACIM_BENCH_QUICK"), Ok(value) if !value.is_empty() && value != "0")
}

/// Appends one `{"id":..,"median_ns":..}` line to the `ACIM_BENCH_JSON`
/// file when that variable is set.  Best-effort: a write failure warns on
/// stderr rather than failing the bench run.
fn append_json_line(label: &str, median: Duration) {
    let Ok(path) = std::env::var("ACIM_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // Labels are normally plain `group/name` identifiers, but a quote or
    // backslash in one must not corrupt the JSON line the gate parses.
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"median_ns\":{}}}\n",
        median.as_nanos()
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(error) = written {
        eprintln!("warning: could not append bench result to {path}: {error}");
    }
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        // Quick mode caps the samples regardless of per-group settings, so
        // CI's regression gate sweeps every bench in seconds.
        let sample_size = if quick_mode() {
            sample_size.min(QUICK_SAMPLE_SIZE)
        } else {
            sample_size
        };
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Caller-controlled measurement, like criterion's `iter_custom`: the
    /// closure receives the iteration count to run (always 1 in this shim)
    /// and returns the duration it measured.  No warm-up calls are made —
    /// the caller owns the entire measurement protocol, which lets paired
    /// benches interleave their workloads and report durations from shared
    /// time windows (see `benches/telemetry.rs`).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            self.samples.push(routine(1));
        }
    }

    /// Times `routine`, collecting `sample_size` samples after warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup = if quick_mode() { 1 } else { 2 };
        for _ in 0..warmup.min(self.sample_size) {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let total: Duration = self.samples.iter().sum();
        println!(
            "{label:<60} median {:>12.3?}  ({} samples, total {:.3?})",
            median,
            self.samples.len(),
            total
        );
        append_json_line(label, median);
        self.samples.clear();
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Benchmarks a closure with an input value under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Finishes the group (formatting no-op in the shim).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }

    /// Benchmarks a closure with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&id.to_string());
        self
    }
}

/// Declares a group of benchmark functions, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("shim/smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= DEFAULT_SAMPLE_SIZE);
    }

    #[test]
    fn groups_run_with_custom_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &x| {
            b.iter(|| {
                runs += x;
                runs
            })
        });
        group.finish();
        assert!(runs >= 5);
    }

    #[test]
    fn iter_custom_records_reported_durations_without_warmup() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("shim/custom", |b| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                calls += 1;
                Duration::from_nanos(calls as u64)
            })
        });
        // No warm-up calls: exactly one measurement per sample.
        assert_eq!(calls, DEFAULT_SAMPLE_SIZE);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
