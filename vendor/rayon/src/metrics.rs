//! Pool-level scheduling metrics: tasks executed and ranges stolen per
//! helper slot, plus a queue-wait histogram.
//!
//! The counters are process-global and monotonically increasing, shared by
//! the persistent pool and the scoped executor (both schedule through
//! [`crate::deque::Scheduler`], which records into them).  A caller that
//! wants per-phase attribution snapshots [`pool_metrics`] before and after
//! the phase and diffs the two with [`PoolMetrics::delta_since`] — that is
//! how the EasyACIM explorers attribute pool work to one exploration run.
//! When several jobs run concurrently their work lands in the same
//! counters, so concurrent deltas attribute the *process's* work during
//! the window, not one job's alone.
//!
//! Queue wait is measured per *job*: the interval from scheduler creation
//! (which happens just before the job is enqueued) to the first claimed
//! range.  The waits land in log-spaced nanosecond buckets
//! ([`QUEUE_WAIT_BOUNDS_NS`]) so a telemetry layer can export them as a
//! latency histogram without this crate growing any dependency.
//!
//! Slot numbering follows the scheduler: slot 0 is always the submitting
//! thread, slots `1..` are helpers (persistent workers or scoped threads).

use crate::pool::current_num_threads;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Upper bounds (inclusive, nanoseconds) of the queue-wait buckets:
/// powers of two from 1 µs to ~0.5 s.  Waits above the last bound land in
/// an implicit overflow bucket.
pub const QUEUE_WAIT_BOUNDS_NS: [u64; 20] = {
    let mut bounds = [0u64; 20];
    let mut i = 0;
    while i < 20 {
        bounds[i] = 1_000u64 << i;
        i += 1;
    }
    bounds
};

/// Per-slot counters, sized to [`current_num_threads`] on first use, plus
/// the process-global queue-wait buckets.
struct SlotCounters {
    tasks: Vec<AtomicU64>,
    steals: Vec<AtomicU64>,
    /// One bucket per bound plus overflow; indexed like the bounds.
    queue_wait_buckets: Vec<AtomicU64>,
    queue_wait_sum_ns: AtomicU64,
    queue_wait_count: AtomicU64,
}

fn counters() -> &'static SlotCounters {
    static COUNTERS: OnceLock<SlotCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let slots = current_num_threads().max(1);
        SlotCounters {
            tasks: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            queue_wait_buckets: (0..QUEUE_WAIT_BOUNDS_NS.len() + 1)
                .map(|_| AtomicU64::new(0))
                .collect(),
            queue_wait_sum_ns: AtomicU64::new(0),
            queue_wait_count: AtomicU64::new(0),
        }
    })
}

/// Records one executed leaf task (a claimed, fully split range) for a
/// helper slot.
pub(crate) fn record_tasks(slot: usize, tasks: u64) {
    let counters = counters();
    counters.tasks[slot % counters.tasks.len()].fetch_add(tasks, Ordering::Relaxed);
}

/// Records one successful steal (a range claimed from another helper's
/// deque) for the thieving slot.
pub(crate) fn record_steal(slot: usize) {
    let counters = counters();
    counters.steals[slot % counters.steals.len()].fetch_add(1, Ordering::Relaxed);
}

/// Records one job's queue wait: scheduler creation to first claim.
pub(crate) fn record_queue_wait(wait_ns: u64) {
    let counters = counters();
    let idx = QUEUE_WAIT_BOUNDS_NS
        .iter()
        .position(|&b| wait_ns <= b)
        .unwrap_or(QUEUE_WAIT_BOUNDS_NS.len());
    counters.queue_wait_buckets[idx].fetch_add(1, Ordering::Relaxed);
    counters
        .queue_wait_sum_ns
        .fetch_add(wait_ns, Ordering::Relaxed);
    counters.queue_wait_count.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the process-global scheduling counters.
///
/// Obtain one with [`pool_metrics`]; subtract an earlier snapshot with
/// [`PoolMetrics::delta_since`] to attribute work to a phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolMetrics {
    /// Leaf tasks executed, per helper slot (slot 0 = submitting thread).
    pub tasks_per_slot: Vec<u64>,
    /// Ranges claimed by stealing from another slot's deque, per thief.
    pub steals_per_slot: Vec<u64>,
    /// Queue-wait histogram counts, one per [`QUEUE_WAIT_BOUNDS_NS`] bound
    /// plus a trailing overflow bucket.
    pub queue_wait_bucket_counts: Vec<u64>,
    /// Sum of all recorded queue waits, nanoseconds.
    pub queue_wait_sum_ns: u64,
    /// Number of jobs whose queue wait has been recorded.
    pub queue_wait_count: u64,
}

impl PoolMetrics {
    /// Total leaf tasks executed across all slots.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_per_slot.iter().sum()
    }

    /// Total successful steals across all slots.
    pub fn steals(&self) -> u64 {
        self.steals_per_slot.iter().sum()
    }

    /// The difference `self - earlier` (saturating per entry, so a stale
    /// or foreign snapshot can never produce an underflow).
    pub fn delta_since(&self, earlier: &PoolMetrics) -> PoolMetrics {
        let diff = |now: &[u64], then: &[u64]| -> Vec<u64> {
            now.iter()
                .enumerate()
                .map(|(i, &v)| v.saturating_sub(then.get(i).copied().unwrap_or(0)))
                .collect()
        };
        PoolMetrics {
            tasks_per_slot: diff(&self.tasks_per_slot, &earlier.tasks_per_slot),
            steals_per_slot: diff(&self.steals_per_slot, &earlier.steals_per_slot),
            queue_wait_bucket_counts: diff(
                &self.queue_wait_bucket_counts,
                &earlier.queue_wait_bucket_counts,
            ),
            queue_wait_sum_ns: self
                .queue_wait_sum_ns
                .saturating_sub(earlier.queue_wait_sum_ns),
            queue_wait_count: self
                .queue_wait_count
                .saturating_sub(earlier.queue_wait_count),
        }
    }
}

/// Snapshots the process-global scheduling counters: leaf tasks executed
/// and ranges stolen per helper slot, plus the queue-wait histogram.
pub fn pool_metrics() -> PoolMetrics {
    let counters = counters();
    let load =
        |v: &[AtomicU64]| -> Vec<u64> { v.iter().map(|c| c.load(Ordering::Relaxed)).collect() };
    PoolMetrics {
        tasks_per_slot: load(&counters.tasks),
        steals_per_slot: load(&counters.steals),
        queue_wait_bucket_counts: load(&counters.queue_wait_buckets),
        queue_wait_sum_ns: counters.queue_wait_sum_ns.load(Ordering::Relaxed),
        queue_wait_count: counters.queue_wait_count.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_monotonic_and_sized_to_the_thread_count() {
        let a = pool_metrics();
        assert_eq!(a.tasks_per_slot.len(), current_num_threads().max(1));
        assert_eq!(a.steals_per_slot.len(), a.tasks_per_slot.len());
        assert_eq!(
            a.queue_wait_bucket_counts.len(),
            QUEUE_WAIT_BOUNDS_NS.len() + 1
        );
        record_tasks(0, 3);
        record_steal(1);
        record_queue_wait(1_500);
        let b = pool_metrics();
        assert!(b.tasks_executed() >= a.tasks_executed() + 3);
        assert!(b.steals() > a.steals());
        assert!(b.queue_wait_count > a.queue_wait_count);
        let delta = b.delta_since(&a);
        assert!(delta.tasks_executed() >= 3);
        assert!(delta.steals() >= 1);
        assert!(delta.queue_wait_count >= 1);
        assert!(delta.queue_wait_sum_ns >= 1_500);
    }

    #[test]
    fn delta_since_saturates_against_foreign_snapshots() {
        let now = PoolMetrics {
            tasks_per_slot: vec![1, 2],
            steals_per_slot: vec![0, 0],
            ..PoolMetrics::default()
        };
        let future = PoolMetrics {
            tasks_per_slot: vec![10, 20, 30],
            steals_per_slot: vec![5, 5, 5],
            queue_wait_sum_ns: 100,
            queue_wait_count: 2,
            ..PoolMetrics::default()
        };
        let delta = now.delta_since(&future);
        assert_eq!(delta.tasks_executed(), 0);
        assert_eq!(delta.steals(), 0);
        assert_eq!(delta.queue_wait_count, 0);
        // Shorter "earlier" vectors are treated as zero.
        let delta = future.delta_since(&now);
        assert_eq!(delta.tasks_per_slot, vec![9, 18, 30]);
        assert_eq!(delta.queue_wait_count, 2);
    }

    #[test]
    fn queue_wait_bounds_are_log_spaced_and_waits_bucket_correctly() {
        for pair in QUEUE_WAIT_BOUNDS_NS.windows(2) {
            assert_eq!(pair[1], pair[0] * 2);
        }
        assert_eq!(QUEUE_WAIT_BOUNDS_NS[0], 1_000);
        let before = pool_metrics();
        record_queue_wait(500); // first bucket (<= 1 µs)
        record_queue_wait(u64::MAX); // overflow bucket
        let delta = pool_metrics().delta_since(&before);
        assert!(delta.queue_wait_bucket_counts[0] >= 1);
        assert!(*delta.queue_wait_bucket_counts.last().unwrap() >= 1);
        assert!(delta.queue_wait_count >= 2);
    }
}
