//! Pool-level scheduling metrics: tasks executed and ranges stolen, per
//! helper slot.
//!
//! The counters are process-global and monotonically increasing, shared by
//! the persistent pool and the scoped executor (both schedule through
//! [`crate::deque::Scheduler`], which records into them).  A caller that
//! wants per-phase attribution snapshots [`pool_metrics`] before and after
//! the phase and diffs the two with [`PoolMetrics::since`] — that is how
//! the EasyACIM explorers attribute pool work to one exploration run.
//! When several jobs run concurrently their work lands in the same
//! counters, so concurrent deltas attribute the *process's* work during
//! the window, not one job's alone.
//!
//! Slot numbering follows the scheduler: slot 0 is always the submitting
//! thread, slots `1..` are helpers (persistent workers or scoped threads).

use crate::pool::current_num_threads;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Per-slot counters, sized to [`current_num_threads`] on first use.
struct SlotCounters {
    tasks: Vec<AtomicU64>,
    steals: Vec<AtomicU64>,
}

fn counters() -> &'static SlotCounters {
    static COUNTERS: OnceLock<SlotCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let slots = current_num_threads().max(1);
        SlotCounters {
            tasks: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..slots).map(|_| AtomicU64::new(0)).collect(),
        }
    })
}

/// Records one executed leaf task (a claimed, fully split range) for a
/// helper slot.
pub(crate) fn record_tasks(slot: usize, tasks: u64) {
    let counters = counters();
    counters.tasks[slot % counters.tasks.len()].fetch_add(tasks, Ordering::Relaxed);
}

/// Records one successful steal (a range claimed from another helper's
/// deque) for the thieving slot.
pub(crate) fn record_steal(slot: usize) {
    let counters = counters();
    counters.steals[slot % counters.steals.len()].fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the process-global scheduling counters.
///
/// Obtain one with [`pool_metrics`]; subtract an earlier snapshot with
/// [`PoolMetrics::since`] to attribute work to a phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolMetrics {
    /// Leaf tasks executed, per helper slot (slot 0 = submitting thread).
    pub tasks_per_slot: Vec<u64>,
    /// Ranges claimed by stealing from another slot's deque, per thief.
    pub steals_per_slot: Vec<u64>,
}

impl PoolMetrics {
    /// Total leaf tasks executed across all slots.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_per_slot.iter().sum()
    }

    /// Total successful steals across all slots.
    pub fn steals(&self) -> u64 {
        self.steals_per_slot.iter().sum()
    }

    /// The per-slot difference `self - earlier` (saturating, so a stale or
    /// foreign snapshot can never produce an underflow).
    pub fn since(&self, earlier: &PoolMetrics) -> PoolMetrics {
        let diff = |now: &[u64], then: &[u64]| {
            now.iter()
                .enumerate()
                .map(|(i, &v)| v.saturating_sub(then.get(i).copied().unwrap_or(0)))
                .collect()
        };
        PoolMetrics {
            tasks_per_slot: diff(&self.tasks_per_slot, &earlier.tasks_per_slot),
            steals_per_slot: diff(&self.steals_per_slot, &earlier.steals_per_slot),
        }
    }
}

/// Snapshots the process-global scheduling counters: leaf tasks executed
/// and ranges stolen, per helper slot.
pub fn pool_metrics() -> PoolMetrics {
    let counters = counters();
    PoolMetrics {
        tasks_per_slot: counters
            .tasks
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        steals_per_slot: counters
            .steals
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_monotonic_and_sized_to_the_thread_count() {
        let a = pool_metrics();
        assert_eq!(a.tasks_per_slot.len(), current_num_threads().max(1));
        assert_eq!(a.steals_per_slot.len(), a.tasks_per_slot.len());
        record_tasks(0, 3);
        record_steal(1);
        let b = pool_metrics();
        assert!(b.tasks_executed() >= a.tasks_executed() + 3);
        assert!(b.steals() > a.steals());
        let delta = b.since(&a);
        assert!(delta.tasks_executed() >= 3);
        assert!(delta.steals() >= 1);
    }

    #[test]
    fn since_saturates_against_foreign_snapshots() {
        let now = PoolMetrics {
            tasks_per_slot: vec![1, 2],
            steals_per_slot: vec![0, 0],
        };
        let future = PoolMetrics {
            tasks_per_slot: vec![10, 20, 30],
            steals_per_slot: vec![5, 5, 5],
        };
        let delta = now.since(&future);
        assert_eq!(delta.tasks_executed(), 0);
        assert_eq!(delta.steals(), 0);
        // Shorter "earlier" vectors are treated as zero.
        let delta = future.since(&now);
        assert_eq!(delta.tasks_per_slot, vec![9, 18, 30]);
    }
}
