//! The parallel-iterator API surface: borrowed slice iterators, owned
//! vector iterators, chunked slice iterators, and the order-preserving
//! `map(..).collect()` shape the workspace drives them with.
//!
//! Collect stays observably identical to the serial `iter().map().collect()`:
//! helpers record each executed range as `(start_index, results)` and the
//! submitting thread stitches the parts back in input order, so seeded
//! explorations are bit-identical no matter how the work was stolen.
//!
//! Which executor a collect uses depends on what the iterator owns:
//!
//! * [`ParVecIter`] (from `vec.into_par_iter()`) owns its items, so its
//!   jobs are `'static` and run on the **persistent pool** — this is the
//!   path the design problems use for per-genome batch evaluation.
//! * [`ParSliceIter`] / [`ParChunks`] borrow their items, so their jobs
//!   run on **scoped helper threads** with the same stealing scheduler
//!   (safe code cannot hand borrows to longer-lived threads).

use crate::deque::{compute_grain, Scheduler};
use crate::pool;
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Ordered partial results of a parallel map: one `(start_index, results)`
/// entry per executed leaf range, stitched back in input order at the end.
type RangeResults<O> = Mutex<Vec<(usize, Vec<O>)>>;

/// Caller-imposed bounds on the adaptive grain size (0 = unset).
#[derive(Debug, Clone, Copy, Default)]
struct GrainLimits {
    min: usize,
    max: usize,
}

impl GrainLimits {
    fn grain(self, items: usize, threads: usize) -> usize {
        let min = if self.min == 0 { 1 } else { self.min };
        let max = if self.max == 0 { usize::MAX } else { self.max };
        compute_grain(items, threads, min, max)
    }
}

/// Sorts executed ranges by start index and flattens them, restoring the
/// serial output order.
fn stitch<O, C: FromIterator<O>>(mut parts: Vec<(usize, Vec<O>)>, expected: usize) -> C {
    parts.sort_unstable_by_key(|(start, _)| *start);
    debug_assert_eq!(
        parts.iter().map(|(_, part)| part.len()).sum::<usize>(),
        expected,
        "parallel map must produce exactly one result per item"
    );
    parts.into_iter().flat_map(|(_, part)| part).collect()
}

/// Runs an index-addressed map on scoped helper threads with work
/// stealing, preserving input order.  Used by the borrowed iterators.
fn collect_borrowed<O, C>(
    items: usize,
    limits: GrainLimits,
    produce: impl Fn(usize) -> O + Sync,
) -> C
where
    O: Send,
    C: FromIterator<O>,
{
    let threads = pool::current_num_threads();
    let grain = limits.grain(items, threads);
    if threads == 1 || items <= grain {
        return (0..items).map(produce).collect();
    }
    // No point spawning helpers that could never claim a leaf.
    let helpers = (threads - 1).min(items.div_ceil(grain).saturating_sub(1));
    let scheduler = Scheduler::new(helpers + 1, items, grain);
    let results: RangeResults<O> = Mutex::new(Vec::new());
    let execute = |range: Range<usize>| {
        let mut out = Vec::with_capacity(range.len());
        for index in range.clone() {
            out.push(produce(index));
        }
        results
            .lock()
            .expect("results lock")
            .push((range.start, out));
    };
    pool::scoped_run(&scheduler, helpers, &execute);
    stitch(results.into_inner().expect("results lock"), items)
}

/// A `'static` map-over-owned-items job for the persistent pool: items are
/// claimed exactly once (ranges partition the index space), mapped, and
/// recorded with their start index for order-preserving stitching.
struct VecMapJob<T, O, F> {
    scheduler: Scheduler,
    items: Vec<Mutex<Option<T>>>,
    map: F,
    results: RangeResults<O>,
}

impl<T, O, F> pool::PoolJob for VecMapJob<T, O, F>
where
    T: Send + 'static,
    O: Send + 'static,
    F: Fn(T) -> O + Send + Sync + 'static,
{
    fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    fn execute(&self, range: Range<usize>) {
        let mut out = Vec::with_capacity(range.len());
        for index in range.clone() {
            let item = self.items[index]
                .lock()
                .expect("item slot lock")
                .take()
                .expect("pool task item claimed twice");
            out.push((self.map)(item));
        }
        self.results
            .lock()
            .expect("results lock")
            .push((range.start, out));
    }
}

/// The subset of rayon's `ParallelIterator` the workspace uses: `map`
/// followed by an order-preserving `collect`.
pub trait ParallelIterator: Sized {
    /// Item type produced by this iterator.
    type Item;

    /// Maps each item through `f`, to be evaluated in parallel at `collect`.
    fn map<O, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> O + Sync,
        O: Send,
    {
        ParMap { base: self, f }
    }
}

/// Length-aware parallel iterators whose task grain can be bounded, like
/// rayon's trait of the same name.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Sets the minimum number of items a stolen/split task may hold
    /// (guards against oversplitting very cheap items).
    fn with_min_len(self, min: usize) -> Self;

    /// Sets the maximum number of items a task may hold.  `with_max_len(1)`
    /// makes every item its own stealable task — what the design problems
    /// use so one expensive genome cannot stall a whole chunk.
    fn with_max_len(self, max: usize) -> Self;
}

/// Conversion of a collection into a parallel iterator over owned items,
/// like rayon's trait of the same name.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The type of the owned items.
    type Item;

    /// Creates a parallel iterator consuming the collection.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion of `&collection` into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;

    /// Creates a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel chunked views of a slice, like rayon's trait of the same name.
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over `chunk_size`-item subslices (the
    /// final chunk may be shorter).  `chunk_size` must be positive.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

/// A parallel iterator over a borrowed slice.
#[derive(Debug)]
pub struct ParSliceIter<'a, T> {
    items: &'a [T],
    limits: GrainLimits,
}

/// A parallel iterator over owned items of a `Vec`, executed on the
/// persistent pool (owning the items is what makes the job `'static`).
#[derive(Debug)]
pub struct ParVecIter<T> {
    items: Vec<T>,
    limits: GrainLimits,
}

/// A parallel iterator over contiguous subslices of a borrowed slice.
#[derive(Debug)]
pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk_size: usize,
    limits: GrainLimits,
}

/// A mapped parallel iterator (the only adaptor the workspace needs).
#[derive(Debug)]
pub struct ParMap<I, F> {
    base: I,
    f: F,
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSliceIter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParSliceIter {
            items: self,
            limits: GrainLimits::default(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSliceIter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParSliceIter {
            items: self,
            limits: GrainLimits::default(),
        }
    }
}

impl<T: Send + 'static> IntoParallelIterator for Vec<T> {
    type Iter = ParVecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> Self::Iter {
        ParVecIter {
            items: self,
            limits: GrainLimits::default(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = ParSliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        ParSliceIter {
            items: self,
            limits: GrainLimits::default(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = ParSliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        self.as_slice().into_par_iter()
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks requires a positive chunk size");
        ParChunks {
            items: self,
            chunk_size,
            limits: GrainLimits::default(),
        }
    }
}

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;
}

impl<T: Send> ParallelIterator for ParVecIter<T> {
    type Item = T;
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
}

impl<'a, T: Sync> IndexedParallelIterator for ParSliceIter<'a, T> {
    fn with_min_len(mut self, min: usize) -> Self {
        self.limits.min = min;
        self
    }

    fn with_max_len(mut self, max: usize) -> Self {
        self.limits.max = max;
        self
    }
}

impl<T: Send> IndexedParallelIterator for ParVecIter<T> {
    fn with_min_len(mut self, min: usize) -> Self {
        self.limits.min = min;
        self
    }

    fn with_max_len(mut self, max: usize) -> Self {
        self.limits.max = max;
        self
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParChunks<'a, T> {
    fn with_min_len(mut self, min: usize) -> Self {
        self.limits.min = min;
        self
    }

    fn with_max_len(mut self, max: usize) -> Self {
        self.limits.max = max;
        self
    }
}

impl<I, O, F> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> O + Sync,
    O: Send,
{
    type Item = O;
}

impl<I, O, F> IndexedParallelIterator for ParMap<I, F>
where
    I: IndexedParallelIterator,
    F: Fn(I::Item) -> O + Sync,
    O: Send,
{
    fn with_min_len(mut self, min: usize) -> Self {
        self.base = self.base.with_min_len(min);
        self
    }

    fn with_max_len(mut self, max: usize) -> Self {
        self.base = self.base.with_max_len(max);
        self
    }
}

impl<'a, T, O, F> ParMap<ParSliceIter<'a, T>, F>
where
    T: Sync,
    O: Send,
    F: Fn(&'a T) -> O + Sync,
{
    /// Evaluates the map with work stealing across scoped helper threads
    /// and collects the results **in input order**.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let items = self.base.items;
        let f = &self.f;
        collect_borrowed(items.len(), self.base.limits, move |index| f(&items[index]))
    }
}

impl<'a, T, O, F> ParMap<ParChunks<'a, T>, F>
where
    T: Sync,
    O: Send,
    F: Fn(&'a [T]) -> O + Sync,
{
    /// Evaluates the map over chunks with work stealing across scoped
    /// helper threads and collects the results **in input order**.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let items = self.base.items;
        let chunk_size = self.base.chunk_size;
        let chunks = items.len().div_ceil(chunk_size);
        let f = &self.f;
        collect_borrowed(chunks, self.base.limits, move |index| {
            let start = index * chunk_size;
            let end = (start + chunk_size).min(items.len());
            f(&items[start..end])
        })
    }
}

impl<T, O, F> ParMap<ParVecIter<T>, F>
where
    T: Send + 'static,
    O: Send + 'static,
    F: Fn(T) -> O + Send + Sync + 'static,
{
    /// Evaluates the map on the **persistent pool** (items are owned, so
    /// the job is `'static`) and collects the results **in input order**.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let items = self.base.items;
        let count = items.len();
        let threads = pool::current_num_threads();
        let grain = self.base.limits.grain(count, threads);
        if threads == 1 || count <= grain {
            return items.into_iter().map(self.f).collect();
        }
        let job = Arc::new(VecMapJob {
            scheduler: Scheduler::new(pool::pool_slots(), count, grain),
            items: items
                .into_iter()
                .map(|item| Mutex::new(Some(item)))
                .collect(),
            map: self.f,
            results: Mutex::new(Vec::new()),
        });
        pool::run_job(job.clone());
        let parts = std::mem::take(&mut *job.results.lock().expect("results lock"));
        stitch(parts, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrowed_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let sequential: Vec<u64> = input.iter().map(|x| x * x).collect();
        let parallel: Vec<u64> = input.par_iter().map(|x| x * x).collect();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn owned_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let sequential: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        let parallel: Vec<u64> = input.clone().into_par_iter().map(|x| x * 3 + 1).collect();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
        let out: Vec<u32> = vec![41u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn par_chunks_cover_the_slice_in_order() {
        let input: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = input
            .par_chunks(10)
            .map(|chunk| chunk.iter().sum())
            .collect();
        let expected: Vec<u32> = input.chunks(10).map(|chunk| chunk.iter().sum()).collect();
        assert_eq!(sums, expected);
        assert_eq!(sums.len(), 11); // 10 full chunks + 1 tail of 3
    }

    #[test]
    fn grain_limits_do_not_change_results() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|x| x + 7).collect();
        let fine: Vec<u64> = input.par_iter().with_max_len(1).map(|x| x + 7).collect();
        let coarse: Vec<u64> = input.par_iter().with_min_len(64).map(|x| x + 7).collect();
        let owned: Vec<u64> = input
            .clone()
            .into_par_iter()
            .with_max_len(1)
            .map(|x| x + 7)
            .collect();
        assert_eq!(fine, expected);
        assert_eq!(coarse, expected);
        assert_eq!(owned, expected);
    }

    #[test]
    fn into_par_iter_on_references_borrows() {
        let input: Vec<u32> = (0..50).collect();
        let doubled: Vec<u32> = (&input).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled[49], 98);
        let slice: &[u32] = &input;
        let tripled: Vec<u32> = slice.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(tripled[49], 147);
    }
}
