//! Work-stealing task scheduler: per-worker deques plus a splitting,
//! panic-isolating execution loop.
//!
//! A [`Scheduler`] tracks one *job* — a map over `items` indexed `0..n` —
//! as a set of index [`Range`]s distributed across per-helper deques.
//! Helpers pop from the **back** of their own deque (LIFO, so recently
//! split work stays cache-warm) and steal from the **front** of a victim's
//! deque (FIFO, so thieves take the biggest, oldest ranges).  Claimed
//! ranges are split in half repeatedly until they shrink to the grain
//! size, with the far half pushed back onto the claimant's own deque where
//! other helpers can steal it — that is what lets one expensive item
//! (a 16× outlier genome, a deep heterogeneous chip) occupy a single
//! helper while the rest of the job drains across the others.
//!
//! Everything here is safe code: the deques are `Mutex<VecDeque<Range>>`,
//! which at the grain sizes this workspace uses (tens of macro/chip
//! evaluations per claim, microseconds to milliseconds each) costs far
//! less than the imbalance it removes.  A lock-free Chase–Lev deque would
//! need `unsafe`, which this crate forbids.

use crate::metrics;
use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long an idle helper parks before re-checking for stealable tasks.
/// Split halves are pushed onto deques without a wake-up (a notify per
/// split would cost more than it saves), so helpers that found nothing
/// claimable poll on this period until the job completes.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// How many leaf tasks to aim for per helper: a claimed range is split
/// until it holds at most `items / (helpers * SPLIT_FACTOR)` items, so
/// every helper has slack to steal even when per-item costs are skewed.
const SPLIT_FACTOR: usize = 4;

/// Computes the adaptive grain size: how many items one leaf task holds.
///
/// `min_len`/`max_len` are the caller's bounds (from `with_min_len` /
/// `with_max_len`); the automatic grain oversplits [`SPLIT_FACTOR`]-fold
/// relative to an even partition so stealing has something to take.
pub(crate) fn compute_grain(items: usize, threads: usize, min_len: usize, max_len: usize) -> usize {
    let auto = items.div_ceil(threads.max(1) * SPLIT_FACTOR).max(1);
    let lo = min_len.max(1);
    let hi = max_len.max(lo);
    auto.clamp(lo, hi)
}

/// Scheduling state of one parallel job: the task deques, the grain, the
/// outstanding-item count and the panic latch.
pub(crate) struct Scheduler {
    deques: Vec<Mutex<VecDeque<Range<usize>>>>,
    grain: usize,
    /// Items not yet executed; the job is complete when this reaches zero.
    pending: AtomicUsize,
    /// Latched by the first task panic; stops further claims.
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    done_lock: Mutex<()>,
    done: Condvar,
    /// When the scheduler was created — immediately before its job is
    /// enqueued, so "creation to first claim" is the job's queue wait.
    created: Instant,
    /// Latched by the first claimed range; gates the one-shot queue-wait
    /// recording.
    claimed_once: AtomicBool,
}

impl Scheduler {
    /// Creates a scheduler for `items` tasks across `slots` helpers,
    /// seeding each helper's deque with one contiguous slice of the index
    /// space (splitting and stealing rebalance from there).
    pub(crate) fn new(slots: usize, items: usize, grain: usize) -> Self {
        assert!(slots >= 1, "scheduler needs at least one helper slot");
        assert!(grain >= 1, "grain must be at least one item");
        let deques: Vec<Mutex<VecDeque<Range<usize>>>> =
            (0..slots).map(|_| Mutex::new(VecDeque::new())).collect();
        let per_slot = items.div_ceil(slots).max(1);
        let mut start = 0;
        let mut slot = 0;
        while start < items {
            let end = (start + per_slot).min(items);
            deques[slot]
                .lock()
                .expect("fresh deque lock")
                .push_back(start..end);
            start = end;
            slot += 1;
        }
        Self {
            deques,
            grain,
            pending: AtomicUsize::new(items),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            created: Instant::now(),
            claimed_once: AtomicBool::new(false),
        }
    }

    /// `true` once every item has executed or a task has panicked.
    pub(crate) fn is_complete(&self) -> bool {
        self.panicked.load(Ordering::Acquire) || self.pending.load(Ordering::Acquire) == 0
    }

    /// Claims one range: own deque back first (LIFO), then steal from the
    /// front of the other deques (FIFO), scanning round-robin.
    fn claim(&self, slot: usize) -> Option<Range<usize>> {
        if self.is_complete() {
            return None;
        }
        let n = self.deques.len();
        let slot = slot % n;
        if let Some(range) = self.deques[slot].lock().expect("deque lock").pop_back() {
            self.note_first_claim();
            return Some(range);
        }
        for offset in 1..n {
            let victim = (slot + offset) % n;
            if let Some(range) = self.deques[victim].lock().expect("deque lock").pop_front() {
                metrics::record_steal(slot);
                self.note_first_claim();
                return Some(range);
            }
        }
        None
    }

    /// Records the job's queue wait (creation to first claimed range) into
    /// the process-global metrics, exactly once per scheduler.
    fn note_first_claim(&self) {
        if !self.claimed_once.swap(true, Ordering::Relaxed) {
            metrics::record_queue_wait(self.created.elapsed().as_nanos() as u64);
        }
    }

    /// Claims and executes tasks until nothing is claimable, splitting each
    /// claimed range down to the grain (far halves go back on the helper's
    /// own deque, where thieves can take them).  Task panics are caught,
    /// latched and re-thrown on the submitting thread by
    /// [`rethrow_panic`](Self::rethrow_panic) — a panicking item never
    /// takes down a pool worker.  Returns whether any task ran.
    pub(crate) fn run(&self, slot: usize, execute: &(dyn Fn(Range<usize>) + Sync)) -> bool {
        let own = slot % self.deques.len();
        let mut did_work = false;
        while let Some(mut range) = self.claim(own) {
            did_work = true;
            while range.len() > self.grain {
                let mid = range.start + range.len() / 2;
                self.deques[own]
                    .lock()
                    .expect("deque lock")
                    .push_back(mid..range.end);
                range = range.start..mid;
            }
            let executed = range.len();
            metrics::record_tasks(own, 1);
            match std::panic::catch_unwind(AssertUnwindSafe(|| execute(range))) {
                Ok(()) => {
                    if self.pending.fetch_sub(executed, Ordering::AcqRel) == executed {
                        let _guard = self.done_lock.lock().expect("done lock");
                        self.done.notify_all();
                    }
                }
                Err(payload) => {
                    {
                        let mut first = self.panic_payload.lock().expect("panic slot lock");
                        if first.is_none() {
                            *first = Some(payload);
                        }
                    }
                    self.panicked.store(true, Ordering::Release);
                    let _guard = self.done_lock.lock().expect("done lock");
                    self.done.notify_all();
                }
            }
        }
        did_work
    }

    /// Runs tasks until the whole job completes, parking briefly whenever
    /// nothing is claimable (another helper may still split its range into
    /// stealable halves, or may be executing the final task).
    pub(crate) fn help_until_complete(&self, slot: usize, execute: &(dyn Fn(Range<usize>) + Sync)) {
        loop {
            self.run(slot, execute);
            if self.is_complete() {
                return;
            }
            let guard = self.done_lock.lock().expect("done lock");
            if self.is_complete() {
                return;
            }
            let _ = self
                .done
                .wait_timeout(guard, IDLE_PARK)
                .expect("done condvar wait");
        }
    }

    /// Re-raises a latched task panic on the calling thread, so a parallel
    /// collect panics exactly like its serial equivalent would.
    pub(crate) fn rethrow_panic(&self) {
        if self.panicked.load(Ordering::Acquire) {
            let payload = self.panic_payload.lock().expect("panic slot lock").take();
            match payload {
                Some(payload) => std::panic::resume_unwind(payload),
                None => panic!("parallel task panicked"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grain_adapts_to_items_and_threads() {
        // 64 items on 4 threads oversplit 4x: 4 items per leaf.
        assert_eq!(compute_grain(64, 4, 1, usize::MAX), 4);
        // Few items: never below one item per leaf.
        assert_eq!(compute_grain(3, 8, 1, usize::MAX), 1);
        // min_len floors the grain, max_len caps it.
        assert_eq!(compute_grain(64, 4, 8, usize::MAX), 8);
        assert_eq!(compute_grain(64, 4, 1, 1), 1);
        // Degenerate bounds never panic: min wins over a smaller max.
        assert_eq!(compute_grain(64, 4, 8, 2), 8);
        assert_eq!(compute_grain(0, 4, 1, usize::MAX), 1);
    }

    #[test]
    fn seeding_covers_the_index_space_disjointly() {
        let scheduler = Scheduler::new(4, 10, 1);
        let mut seen = [false; 10];
        for deque in &scheduler.deques {
            for range in deque.lock().unwrap().iter() {
                for i in range.clone() {
                    assert!(!seen[i], "index {i} seeded twice");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every index seeded once");
    }

    #[test]
    fn single_helper_drains_everything() {
        let scheduler = Scheduler::new(3, 100, 8);
        let executed = AtomicUsize::new(0);
        let execute = |range: Range<usize>| {
            executed.fetch_add(range.len(), Ordering::SeqCst);
        };
        scheduler.help_until_complete(0, &execute);
        assert!(scheduler.is_complete());
        assert_eq!(executed.load(Ordering::SeqCst), 100);
        scheduler.rethrow_panic(); // no-op without a panic
    }

    #[test]
    fn panic_latches_and_rethrows() {
        let scheduler = Scheduler::new(2, 10, 1);
        let execute = |range: Range<usize>| {
            if range.start == 3 {
                panic!("item 3 exploded");
            }
        };
        scheduler.help_until_complete(0, &execute);
        assert!(scheduler.is_complete());
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| scheduler.rethrow_panic()))
            .expect_err("must rethrow");
        let message = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("item 3 exploded"), "got: {message}");
    }
}
