//! Offline vendored shim of the `rayon` API surface used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `par_iter().map(..).collect()` shape on slices, executed on real OS
//! threads via [`std::thread::scope`].  Items are split into contiguous
//! chunks, one per available core, and results are stitched back together in
//! input order — so a `collect` here is observably identical to the
//! sequential `iter().map(..).collect()`, just faster.  Swapping in the real
//! `rayon` later only requires deleting this shim from the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Rayon-style prelude: import the traits to get `par_iter` on slices.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Returns the number of worker threads used for parallel operations.
///
/// Queried from the OS once and cached: `available_parallelism` performs a
/// syscall (`sched_getaffinity` on Linux), and hot callers consult the
/// thread count on every `collect` — real rayon likewise sizes its pool
/// once at startup.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Conversion of `&collection` into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;

    /// Creates a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSliceIter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParSliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSliceIter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParSliceIter { items: self }
    }
}

/// A parallel iterator over a slice.
#[derive(Debug)]
pub struct ParSliceIter<'a, T> {
    items: &'a [T],
}

/// The subset of rayon's `ParallelIterator` the workspace uses: `map`
/// followed by an order-preserving `collect`.
pub trait ParallelIterator: Sized {
    /// Item type produced by this iterator.
    type Item;

    /// Maps each item through `f`, to be evaluated in parallel at `collect`.
    fn map<O, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> O + Sync,
        O: Send,
    {
        ParMap { base: self, f }
    }
}

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;
}

/// A mapped parallel iterator (the only adaptor the workspace needs).
#[derive(Debug)]
pub struct ParMap<I, F> {
    base: I,
    f: F,
}

impl<'a, T, O, F> ParMap<ParSliceIter<'a, T>, F>
where
    T: Sync,
    O: Send,
    F: Fn(&'a T) -> O + Sync,
{
    /// Evaluates the map on all items across `current_num_threads` threads
    /// and collects the results **in input order**.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let items = self.base.items;
        let f = &self.f;
        if items.len() <= 1 || current_num_threads() == 1 {
            return items.iter().map(f).collect();
        }
        let threads = current_num_threads().min(items.len());
        let chunk_size = items.len().div_ceil(threads);
        let chunk_results: Vec<Vec<O>> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<O>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel map worker panicked"))
                .collect()
        });
        chunk_results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let sequential: Vec<u64> = input.iter().map(|x| x * x).collect();
        let parallel: Vec<u64> = input.par_iter().map(|x| x * x).collect();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
