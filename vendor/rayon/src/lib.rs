//! Offline vendored shim of the `rayon` API surface used by this
//! workspace, backed by a work-stealing scheduler.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the rayon call shapes the workspace drives —
//! `par_iter().map(..).collect()`, `into_par_iter()`, `par_chunks`,
//! [`join`] — on a scheduler with per-worker deques, stealing, and
//! adaptive task splitting, so skewed per-item costs (one heterogeneous
//! chip genome 16× dearer than its cohort) load-balance instead of
//! straggling in a fixed chunk.  A `collect` is observably identical to
//! the sequential `iter().map(..).collect()` — same order, same panics —
//! just faster.  Swapping in the real `rayon` later only requires
//! deleting this shim from the workspace.
//!
//! # Threading model
//!
//! * [`current_num_threads`] sizes everything: the [`NUM_THREADS_ENV`]
//!   (`RAYON_NUM_THREADS`) override when set, otherwise the OS core
//!   count; queried once and cached.
//! * **Owned iterators** (`vec.into_par_iter()`) run on a **persistent
//!   global pool**: worker threads are spawned lazily once per process
//!   and park between jobs.  Owning the items is what makes the job
//!   `'static`, which is the only way safe code can hand work to threads
//!   that outlive the call — this crate is `#![forbid(unsafe_code)]`,
//!   whereas real rayon erases task lifetimes with `unsafe`.
//! * **Borrowed iterators** (`slice.par_iter()`, `par_chunks`) run the
//!   same stealing scheduler on scoped helper threads spawned per job.
//! * Tasks split in half down to an adaptive grain
//!   (≈ `items / (threads × 4)`, bounded by
//!   [`IndexedParallelIterator::with_min_len`] /
//!   [`IndexedParallelIterator::with_max_len`]); split halves are
//!   stealable, panics are caught per task and re-thrown on the
//!   submitting thread, and a panicking item never kills a pool worker.
//!
//! The module split mirrors the runtime layering: `deque` (scheduler:
//! deques, stealing, splitting, panic latch), `pool` (persistent pool,
//! scoped executor, thread sizing), `iter` (public iterator API and
//! order-preserving collects).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deque;
mod iter;
mod metrics;
mod pool;

pub use iter::{
    IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParChunks, ParMap,
    ParSliceIter, ParVecIter, ParallelIterator, ParallelSlice,
};
pub use metrics::{pool_metrics, PoolMetrics, QUEUE_WAIT_BOUNDS_NS};
pub use pool::{current_num_threads, join, join_owned, NUM_THREADS_ENV};

/// Rayon-style prelude: import the traits to get `par_iter` on slices,
/// `into_par_iter` on vectors, `par_chunks` on slices, and the grain
/// bounds on all of them.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}
