//! The persistent global thread pool and the scoped fallback executor.
//!
//! # Two executors, one scheduler
//!
//! Everything schedules through [`crate::deque::Scheduler`]; what differs
//! is where the helper threads come from:
//!
//! * **The persistent pool** (this module's [`run_job`]) — worker threads
//!   are spawned lazily **once per process**, sized to
//!   [`current_num_threads`]` - 1` (the submitting thread is the final
//!   helper), and park on a condvar between jobs.  Jobs must be `'static`:
//!   under `#![forbid(unsafe_code)]` a task can only cross to a
//!   longer-lived thread by owning its data, which is why the owned
//!   `Vec<T>` parallel iterator is the pool-backed one.  Real rayon erases
//!   task lifetimes with `unsafe`; this shim refuses that trade and keeps
//!   the borrowed path on scoped threads instead.
//! * **The scoped executor** ([`scoped_run`]) — for borrowed
//!   `par_iter()`-style jobs.  Helpers are `std::thread::scope` threads
//!   spawned per job wave; they share the same deques, stealing and grain
//!   logic, so skewed per-item costs still load-balance.
//!
//! Workers drain jobs FIFO but skim *every* queued job for claimable
//! tasks, so a job submitted from inside a pool worker (nested
//! parallelism) is helped by the whole pool, and the submitting worker
//! drives it to completion itself even if no other worker is free —
//! nested jobs cannot deadlock.

use crate::deque::Scheduler;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};
use std::time::Duration;

/// Environment variable overriding the worker-thread count, mirroring real
/// rayon's variable of the same name.  CI smoke jobs use it to pin
/// parallelism; invalid or zero values fall back to the OS core count.
pub const NUM_THREADS_ENV: &str = "RAYON_NUM_THREADS";

/// Upper bound on the thread override, so a stray huge value cannot make
/// the lazily-spawned pool exhaust process limits.
const MAX_THREADS: usize = 256;

/// How long an idle worker with queued-but-unclaimable jobs parks before
/// re-polling (split halves appear in job deques without a wake-up).
const WORKER_POLL: Duration = Duration::from_micros(200);

/// Returns the number of threads parallel operations use: the
/// [`NUM_THREADS_ENV`] override when set to a positive integer, otherwise
/// the OS-reported core count.
///
/// Queried once and cached: `available_parallelism` performs a syscall
/// (`sched_getaffinity` on Linux) and hot callers consult the thread count
/// on every collect; real rayon likewise sizes its pool once at startup.
/// The persistent pool is sized from the same cached value, so the
/// override must be in the environment before the first parallel call.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let os_threads = || {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        };
        match std::env::var(NUM_THREADS_ENV) {
            Ok(value) => thread_override(&value).unwrap_or_else(os_threads),
            Err(_) => os_threads(),
        }
    })
}

/// Parses a [`NUM_THREADS_ENV`] value: a positive integer (clamped to
/// [`MAX_THREADS`]); anything else — empty, zero, garbage — is `None` so
/// the caller falls back to the OS core count.
pub(crate) fn thread_override(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(threads) if threads >= 1 => Some(threads.min(MAX_THREADS)),
        _ => None,
    }
}

/// A `'static` job the persistent pool can execute: scheduling state plus
/// the range-execution hook (which owns items, closure and result slots).
pub(crate) trait PoolJob: Send + Sync {
    /// The job's scheduling state.
    fn scheduler(&self) -> &Scheduler;
    /// Executes one claimed range of item indices.
    fn execute(&self, range: Range<usize>);
}

/// The lazily-initialized persistent pool.
struct Pool {
    /// Queued jobs, FIFO.  Completed jobs are swept out opportunistically.
    jobs: Mutex<VecDeque<Arc<dyn PoolJob>>>,
    /// Signalled on job submission; waited on by idle workers.
    work: Condvar,
    /// Number of persistent worker threads (helper slots `1..=workers`).
    workers: usize,
}

/// Returns the process-wide pool, spawning its workers on first use.
fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    static SPAWN_WORKERS: Once = Once::new();
    let pool = POOL.get_or_init(|| Pool {
        jobs: Mutex::new(VecDeque::new()),
        work: Condvar::new(),
        workers: current_num_threads().saturating_sub(1),
    });
    SPAWN_WORKERS.call_once(|| {
        for worker in 0..pool.workers {
            std::thread::Builder::new()
                .name(format!("rayon-shim-worker-{worker}"))
                .spawn(move || worker_loop(pool, worker + 1))
                .expect("spawn rayon shim pool worker");
        }
    });
    pool
}

/// A persistent worker: sleep until jobs exist, then help whichever queued
/// job has claimable tasks.  Skimming the whole queue (not just the front)
/// keeps nested jobs — submitted by a worker that is itself mid-task —
/// supplied with helpers.
fn worker_loop(pool: &'static Pool, slot: usize) {
    loop {
        let jobs: Vec<Arc<dyn PoolJob>> = {
            let mut queue = pool.jobs.lock().expect("pool job queue lock");
            loop {
                queue.retain(|job| !job.scheduler().is_complete());
                if !queue.is_empty() {
                    break queue.iter().cloned().collect();
                }
                queue = pool.work.wait(queue).expect("pool work condvar");
            }
        };
        let mut did_work = false;
        for job in &jobs {
            if job.scheduler().run(slot, &|range| job.execute(range)) {
                did_work = true;
                break;
            }
        }
        if !did_work {
            // Jobs are queued but nothing was claimable: their last tasks
            // are executing elsewhere, or splits have not landed yet.
            let queue = pool.jobs.lock().expect("pool job queue lock");
            let _ = pool
                .work
                .wait_timeout(queue, WORKER_POLL)
                .expect("pool work condvar");
        }
    }
}

/// Runs a `'static` job on the persistent pool.  The submitting thread
/// enqueues the job for the workers, then helps as slot 0 until the job
/// completes; a latched task panic is re-thrown here on the submitter.
pub(crate) fn run_job(job: Arc<dyn PoolJob>) {
    let pool = global();
    if pool.workers > 0 {
        pool.jobs
            .lock()
            .expect("pool job queue lock")
            .push_back(job.clone());
        pool.work.notify_all();
    }
    job.scheduler()
        .help_until_complete(0, &|range| job.execute(range));
    if pool.workers > 0 {
        pool.jobs
            .lock()
            .expect("pool job queue lock")
            .retain(|queued| !Arc::ptr_eq(queued, &job));
    }
    job.scheduler().rethrow_panic();
}

/// Number of helper slots pool jobs should size their scheduler for: the
/// persistent workers plus the submitting thread.
pub(crate) fn pool_slots() -> usize {
    global().workers + 1
}

/// Runs a borrowed job on scoped helper threads (spawned for this job
/// only — safe code cannot ship non-`'static` borrows to the persistent
/// workers).  The caller helps as slot 0; helper count is `helpers`, and
/// `scheduler` must have `helpers + 1` slots.  Task panics are re-thrown
/// on the caller after every helper has been joined.
pub(crate) fn scoped_run(
    scheduler: &Scheduler,
    helpers: usize,
    execute: &(dyn Fn(Range<usize>) + Sync),
) {
    std::thread::scope(|scope| {
        for slot in 1..=helpers {
            scope.spawn(move || scheduler.help_until_complete(slot, execute));
        }
        scheduler.help_until_complete(0, execute);
    });
    scheduler.rethrow_panic();
}

/// A one-task pool job wrapping a `'static` closure, used by
/// [`join_owned`]: the closure crosses to whichever thread claims the
/// single task, and the result comes back through a slot.  Scheduling
/// state (completion, panic latch) lives in the shared [`Scheduler`].
struct JoinJob<A, RA> {
    scheduler: Scheduler,
    closure: Mutex<Option<A>>,
    result: Mutex<Option<RA>>,
}

impl<A, RA> PoolJob for JoinJob<A, RA>
where
    A: FnOnce() -> RA + Send + 'static,
    RA: Send + 'static,
{
    fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    fn execute(&self, _range: Range<usize>) {
        let closure = self
            .closure
            .lock()
            .expect("join closure lock")
            .take()
            .expect("join closure claimed twice");
        let result = closure();
        *self.result.lock().expect("join result lock") = Some(result);
    }
}

/// Like [`join`], but routes `oper_a` through the **persistent pool**
/// instead of spawning a scoped helper thread: `oper_a` is enqueued as a
/// one-task pool job (owning its captures is what makes it `'static`),
/// `oper_b` runs on the calling thread, and the caller then claims
/// `oper_a` itself if no worker picked it up — so the pair never blocks
/// waiting for a free worker.  Panics in either closure propagate to the
/// caller, `oper_b`'s first.
///
/// Prefer this over [`join`] whenever both halves can own their data: it
/// reuses parked workers instead of paying a thread spawn per call.
/// [`join`] remains for borrowed closures, which safe code cannot hand to
/// threads that outlive the call.
pub fn join_owned<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send + 'static,
    RA: Send + 'static,
    B: FnOnce() -> RB,
{
    let pool = global();
    if pool.workers == 0 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let job = Arc::new(JoinJob {
        scheduler: Scheduler::new(pool_slots(), 1, 1),
        closure: Mutex::new(Some(oper_a)),
        result: Mutex::new(None),
    });
    let queued: Arc<dyn PoolJob> = job.clone();
    pool.jobs
        .lock()
        .expect("pool job queue lock")
        .push_back(queued.clone());
    pool.work.notify_all();

    let rb = std::panic::catch_unwind(std::panic::AssertUnwindSafe(oper_b));

    // Claim oper_a ourselves if it is still unclaimed, or wait for the
    // worker that took it; either way the job is complete afterwards and
    // can be removed from the queue.
    job.scheduler()
        .help_until_complete(0, &|range| job.execute(range));
    pool.jobs
        .lock()
        .expect("pool job queue lock")
        .retain(|q| !Arc::ptr_eq(q, &queued));

    let rb = match rb {
        Ok(rb) => rb,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    job.scheduler().rethrow_panic();
    let ra = job
        .result
        .lock()
        .expect("join result lock")
        .take()
        .expect("join_owned result missing");
    (ra, rb)
}

/// Runs both closures, potentially in parallel, and returns both results —
/// real rayon's `join`.  `oper_b` runs on the calling thread; `oper_a`
/// runs on a scoped helper thread (or inline when only one thread is
/// configured).  A panic in either closure propagates to the caller.
///
/// When `oper_a` owns its captures (`'static`), prefer [`join_owned`],
/// which reuses the persistent pool instead of spawning a thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() == 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(oper_a);
        let rb = oper_b();
        let ra = match handle.join() {
            Ok(ra) => ra,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_override_accepts_positive_integers() {
        assert_eq!(thread_override("1"), Some(1));
        assert_eq!(thread_override("8"), Some(8));
        assert_eq!(thread_override(" 16 "), Some(16));
        // Clamped so a stray huge value cannot spawn thousands of threads.
        assert_eq!(thread_override("100000"), Some(MAX_THREADS));
    }

    #[test]
    fn thread_override_rejects_garbage() {
        assert_eq!(thread_override(""), None);
        assert_eq!(thread_override("0"), None);
        assert_eq!(thread_override("-2"), None);
        assert_eq!(thread_override("four"), None);
        assert_eq!(thread_override("3.5"), None);
    }

    #[test]
    fn num_threads_is_positive_and_cached() {
        let first = current_num_threads();
        assert!(first >= 1);
        assert_eq!(current_num_threads(), first);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "right");
        assert_eq!(a, 4);
        assert_eq!(b, "right");
    }

    #[test]
    fn join_propagates_panics() {
        let err = std::panic::catch_unwind(|| join(|| panic!("left side"), || 1));
        assert!(err.is_err());
        let err = std::panic::catch_unwind(|| join(|| 1, || panic!("right side")));
        assert!(err.is_err());
    }

    #[test]
    fn join_owned_returns_both_results() {
        let owned = [1u64, 2, 3];
        let borrowed = String::from("right");
        let (a, b) = join_owned(
            move || owned.iter().sum::<u64>(),
            || borrowed.len(), // oper_b may borrow: it runs on the caller
        );
        assert_eq!(a, 6);
        assert_eq!(b, 5);
    }

    #[test]
    fn join_owned_propagates_panics_from_either_side() {
        let err = std::panic::catch_unwind(|| join_owned(|| panic!("pool side"), || 1));
        assert!(err.is_err());
        let err = std::panic::catch_unwind(|| join_owned(|| 1, || panic!("caller side")));
        assert!(err.is_err());
        // The pool survives a panicking join job.
        let (a, b) = join_owned(|| 7, || 8);
        assert_eq!((a, b), (7, 8));
    }

    #[test]
    fn join_owned_nests() {
        let ((a, b), c) = join_owned(|| join_owned(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }
}
