//! The `RAYON_NUM_THREADS` override must win over the OS core count.
//!
//! This lives in its own integration-test binary (= its own process)
//! because the thread count is cached on first use: the variable must be
//! set before any parallel call, and must not leak into other tests.

use rayon::prelude::*;

#[test]
fn env_override_pins_the_thread_count() {
    std::env::set_var(rayon::NUM_THREADS_ENV, "3");
    assert_eq!(rayon::current_num_threads(), 3);
    // The cached value is stable even if the environment changes later.
    std::env::set_var(rayon::NUM_THREADS_ENV, "7");
    assert_eq!(rayon::current_num_threads(), 3);

    // Both executors work at the pinned width and stay order-preserving.
    let input: Vec<u64> = (0..500).collect();
    let expected: Vec<u64> = input.iter().map(|x| x * 2 + 1).collect();
    let borrowed: Vec<u64> = input.par_iter().map(|x| x * 2 + 1).collect();
    let owned: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2 + 1).collect();
    assert_eq!(borrowed, expected);
    assert_eq!(owned, expected);
}
