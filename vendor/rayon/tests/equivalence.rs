//! Property test: a parallel collect equals the serial map, across sizes,
//! executors and grain bounds.  Runs with `RAYON_NUM_THREADS=4` so the
//! scheduler is genuinely parallel even on a 1-core container (own
//! process, so the pin cannot leak into other tests).

use proptest::prelude::*;
use rayon::prelude::*;

fn pin_threads() {
    std::env::set_var(rayon::NUM_THREADS_ENV, "4");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_collect_equals_serial_map(values in prop::collection::vec(0u64..1_000_000, 0..257)) {
        pin_threads();
        let serial: Vec<u64> = values.iter().map(|v| v.wrapping_mul(31).rotate_left(7)).collect();

        let borrowed: Vec<u64> = values.par_iter().map(|v| v.wrapping_mul(31).rotate_left(7)).collect();
        prop_assert_eq!(&borrowed, &serial);

        let owned: Vec<u64> = values.clone().into_par_iter().map(|v| v.wrapping_mul(31).rotate_left(7)).collect();
        prop_assert_eq!(&owned, &serial);

        let fine: Vec<u64> = values.par_iter().with_max_len(1).map(|v| v.wrapping_mul(31).rotate_left(7)).collect();
        prop_assert_eq!(&fine, &serial);

        let coarse: Vec<u64> = values.clone().into_par_iter().with_min_len(32).map(|v| v.wrapping_mul(31).rotate_left(7)).collect();
        prop_assert_eq!(&coarse, &serial);
    }

    #[test]
    fn par_chunks_equals_serial_chunks(
        values in prop::collection::vec(0u32..10_000, 1..200),
        chunk in 1usize..17,
    ) {
        pin_threads();
        let serial: Vec<u32> = values.chunks(chunk).map(|c| c.iter().sum()).collect();
        let parallel: Vec<u32> = values.par_chunks(chunk).map(|c| c.iter().sum()).collect();
        prop_assert_eq!(parallel, serial);
    }
}
