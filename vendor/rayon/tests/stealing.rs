//! Behavioural tests of the work-stealing runtime: load balancing under
//! skew, nested parallelism, and panic containment.
//!
//! All tests pin `RAYON_NUM_THREADS=4` (each test file is its own
//! process, and the first call caches the value) so the scheduler is
//! genuinely parallel even on a 1-core CI container.
//!
//! The stealing tests are *structural*, not timing-based: the slow item
//! blocks until every other item has finished.  Under the pre-stealing
//! chunked executor this deadlocks — the slow item's chunk-mates are
//! queued serially behind it on the same thread — so completing at all
//! proves other helpers stole the work.  A watchdog turns a would-be
//! deadlock into a clean assertion failure.

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREADS: &str = "4";
const ITEMS: usize = 32;

fn pin_threads() {
    std::env::set_var(rayon::NUM_THREADS_ENV, THREADS);
}

/// Spins until `counter` reaches `target`; `false` on watchdog timeout
/// (i.e. the remaining items are starved behind the caller).
fn wait_for(counter: &AtomicUsize, target: usize) -> bool {
    let start = Instant::now();
    while counter.load(Ordering::SeqCst) < target {
        if start.elapsed() > Duration::from_secs(30) {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

#[test]
fn slow_item_does_not_starve_its_chunk_borrowed() {
    pin_threads();
    let finished = AtomicUsize::new(0);
    let items: Vec<usize> = (0..ITEMS).collect();
    let out: Vec<usize> = items
        .par_iter()
        .with_max_len(1)
        .map(|&i| {
            if i == 0 {
                // The "16x genome": it can only finish after every other
                // item has been executed — by some *other* helper, since
                // this one is blocked here.
                assert!(
                    wait_for(&finished, ITEMS - 1),
                    "fast items starved behind the slow item: stealing is broken"
                );
            } else {
                finished.fetch_add(1, Ordering::SeqCst);
            }
            i * 10
        })
        .collect();
    let expected: Vec<usize> = (0..ITEMS).map(|i| i * 10).collect();
    assert_eq!(out, expected, "stealing must preserve input order");
}

#[test]
fn slow_item_does_not_starve_its_chunk_pool() {
    pin_threads();
    let finished = Arc::new(AtomicUsize::new(0));
    let items: Vec<usize> = (0..ITEMS).collect();
    let finished_in = Arc::clone(&finished);
    let out: Vec<usize> = items
        .into_par_iter()
        .with_max_len(1)
        .map(move |i| {
            if i == 0 {
                assert!(
                    wait_for(&finished_in, ITEMS - 1),
                    "fast items starved behind the slow item on the pool"
                );
            } else {
                finished_in.fetch_add(1, Ordering::SeqCst);
            }
            i * 10
        })
        .collect();
    let expected: Vec<usize> = (0..ITEMS).map(|i| i * 10).collect();
    assert_eq!(out, expected, "pool stealing must preserve input order");
}

#[test]
fn nested_borrowed_par_iter_inside_pool_worker() {
    pin_threads();
    let out: Vec<u64> = (0u64..8)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|k| {
            let inner: Vec<u64> = (0..100).collect();
            let mapped: Vec<u64> = inner.par_iter().map(|x| x + k).collect();
            mapped.iter().sum()
        })
        .collect();
    let expected: Vec<u64> = (0u64..8).map(|k| (0..100).map(|x| x + k).sum()).collect();
    assert_eq!(out, expected);
}

#[test]
fn nested_pool_job_inside_pool_worker() {
    pin_threads();
    let out: Vec<u64> = (0u64..8)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|k| {
            let inner: Vec<u64> = (0..100).collect();
            let mapped: Vec<u64> = inner.into_par_iter().map(move |x| x + k).collect();
            mapped.iter().sum()
        })
        .collect();
    let expected: Vec<u64> = (0u64..8).map(|k| (0..100).map(|x| x + k).sum()).collect();
    assert_eq!(out, expected);
}

#[test]
fn join_runs_nested_under_the_pinned_width() {
    pin_threads();
    let (left, right) = rayon::join(
        || {
            let v: Vec<u32> = (0..64).collect();
            v.par_iter().map(|x| x + 1).collect::<Vec<u32>>()
        },
        || 7u32,
    );
    assert_eq!(left.len(), 64);
    assert_eq!(left[63], 64);
    assert_eq!(right, 7);
}

#[test]
fn panic_propagates_and_the_pool_survives_borrowed() {
    pin_threads();
    let items: Vec<u32> = (0..64).collect();
    let caught = std::panic::catch_unwind(|| {
        let _: Vec<u32> = items
            .par_iter()
            .map(|&x| {
                if x == 13 {
                    panic!("unlucky item");
                }
                x
            })
            .collect();
    });
    let payload = caught.expect_err("the task panic must propagate to the caller");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("non-str payload");
    assert!(message.contains("unlucky item"), "got: {message}");

    // The executor is intact: subsequent collects still work.
    let ok: Vec<u32> = items.par_iter().map(|x| x * 2).collect();
    assert_eq!(ok[63], 126);
}

#[test]
fn panic_propagates_and_the_pool_survives_owned() {
    pin_threads();
    for round in 0..3 {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            let _: Vec<u32> = items
                .into_par_iter()
                .with_max_len(1)
                .map(|x| {
                    if x == 13 {
                        panic!("unlucky pool item");
                    }
                    x
                })
                .collect();
        });
        assert!(
            caught.is_err(),
            "round {round}: the pool task panic must propagate"
        );
        // Persistent workers caught the panic and live on: the next job
        // (and the next round's panicking job) still complete.
        let ok: Vec<u32> = (0..64u32)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(ok[63], 126, "round {round}: pool must survive the panic");
    }
}

#[test]
fn many_concurrent_pool_jobs_from_test_threads() {
    pin_threads();
    // Several submitters racing on the shared pool must each get their own
    // correctly-ordered result.
    std::thread::scope(|scope| {
        for submitter in 0u64..4 {
            scope.spawn(move || {
                for _ in 0..20 {
                    let input: Vec<u64> = (0..200).collect();
                    let out: Vec<u64> = input
                        .clone()
                        .into_par_iter()
                        .map(move |x| x * 2 + submitter)
                        .collect();
                    let expected: Vec<u64> = input.iter().map(|x| x * 2 + submitter).collect();
                    assert_eq!(out, expected);
                }
            });
        }
    });
}
