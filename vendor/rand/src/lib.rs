//! Offline vendored shim of the `rand` 0.8 API surface used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the small subset of `rand` the workspace relies on:
//! [`rngs::StdRng`] (a deterministic xoshiro256++ generator),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_bool` and `gen_range`.  The stream differs from upstream
//! `rand`'s `StdRng`, but every consumer in this workspace only requires
//! determinism per seed, not a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64 the
    /// same way for every call site so runs are reproducible.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (byte, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce from the uniform ("standard")
/// distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything the workspace's statistics can observe.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of its type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&v));
            let w = rng.gen_range(1.0..=1.5f64);
            assert!((1.0..=1.5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
