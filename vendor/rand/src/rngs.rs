//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Small, fast, and statistically strong enough for simulated-annealing
/// placement, NSGA-II variation, and Monte-Carlo noise sampling.  Unlike
/// upstream `rand`, the stream is stable across versions of this shim —
/// exploration results are reproducible per seed by construction.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let values: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
        assert_ne!(values[0], values[1]);
    }
}
