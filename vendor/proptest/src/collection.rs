//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specification for [`vec()`]: a fixed length or a range of lengths.
pub trait SizeRange {
    /// Samples a concrete length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for vectors of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.len.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Creates a strategy producing vectors whose elements come from
/// `element` and whose length follows `len` (a `usize` or `Range<usize>`).
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nested_vecs_sample_recursively() {
        let mut rng = StdRng::seed_from_u64(5);
        let strategy = vec(vec(0.0..1.0f64, 2), 3..6);
        let value = strategy.sample(&mut rng);
        assert!((3..6).contains(&value.len()));
        assert!(value.iter().all(|inner| inner.len() == 2));
    }
}
