//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// How many resamples a filtering strategy attempts before giving up.
const MAX_FILTER_ATTEMPTS: usize = 10_000;

/// A source of random test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through `f`, resampling whenever it returns
    /// `None`.  `reason` labels the rejection in the panic message when the
    /// filter never accepts.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            base: self,
            f,
            reason,
        }
    }

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            if let Some(value) = (self.f)(self.base.sample(rng)) {
                return value;
            }
        }
        panic!(
            "prop_filter_map rejected {MAX_FILTER_ATTEMPTS} samples in a row: {}",
            self.reason
        );
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn just_returns_the_value() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Just(17u32).sample(&mut rng), 17);
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = StdRng::seed_from_u64(2);
        let doubled = (1u32..5).prop_map(|v| v * 2).sample(&mut rng);
        assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
    }

    #[test]
    #[should_panic(expected = "never accepts")]
    fn impossible_filter_panics_with_reason() {
        let mut rng = StdRng::seed_from_u64(3);
        let strategy = (0u32..10).prop_filter_map("never accepts", |_| None::<u32>);
        let _ = strategy.sample(&mut rng);
    }
}
