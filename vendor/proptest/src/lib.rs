//! Offline vendored shim of the `proptest` API surface used by this
//! workspace's property tests.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a deterministic random-testing harness with proptest's call shapes: the
//! [`proptest!`] macro, [`strategy::Strategy`] implemented for ranges,
//! tuples and [`collection::vec`], plus `prop_filter_map` and the
//! `prop_assert*` macros.  Unlike real proptest there is no shrinking —
//! a failing case panics with the sampled values still visible in the
//! assertion message — but case generation is reproducible (fixed seed per
//! test function).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

/// Configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Namespace mirror of proptest's `prop` module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The proptest prelude: the [`Strategy`](crate::strategy::Strategy) trait,
/// config type, macros, and the `prop` namespace.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property-test functions over sampled inputs.
///
/// Supports the subset of proptest's grammar this workspace uses: an
/// optional leading `#![proptest_config(expr)]`, then `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Per-function deterministic seed so failures reproduce.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
                });
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            for _case in 0..config.cases {
                let ( $($pat,)* ) =
                    ( $($crate::strategy::Strategy::sample(&$strategy, &mut rng),)* );
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 0.5..2.5f64,
            (a, b) in (1u32..=4, 10usize..20),
        ) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((1..=4).contains(&a));
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn vec_lengths_follow_the_len_argument(
            fixed in prop::collection::vec(0.0..1.0f64, 4),
            ranged in prop::collection::vec(0u32..9, 1..5),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..5).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|&v| v < 9));
        }

        #[test]
        fn filter_map_transforms_and_filters(
            even in (0u32..100).prop_filter_map("must be even", |v| {
                (v % 2 == 0).then_some(v * 10)
            }),
        ) {
            prop_assert_eq!(even % 20, 0);
        }

        #[test]
        fn mutable_bindings_work(mut xs in prop::collection::vec(0usize..5, 2..4)) {
            xs.push(7);
            prop_assert_eq!(*xs.last().unwrap(), 7);
        }
    }
}
