//! # easyacim-suite
//!
//! Umbrella crate of the EasyACIM reproduction workspace.  It exists to host
//! the runnable examples in `examples/` and the cross-crate integration
//! tests in `tests/`; the actual functionality lives in the member crates
//! and is re-exported by [`easyacim`] (see `easyacim::prelude`).
//!
//! Start with the `quickstart` example:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use easyacim::prelude;

/// The workspace version, shared by every member crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
